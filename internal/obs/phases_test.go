package obs

import (
	"testing"
	"time"
)

func TestNilPhaseAccounterIsNoOp(t *testing.T) {
	var a *PhaseAccounter
	a.StartSearch(4)
	a.EnableAllocCounting()
	if h := a.Global(); h != nil {
		t.Fatal("nil accounter returned a global handle")
	}
	if h := a.Shard(0); h != nil {
		t.Fatal("nil accounter returned a shard handle")
	}
	var h *PhaseHandle
	tok := h.Begin()
	h.End(tok, PhasePredict)
	tt := h.BeginTrial()
	h.EndTrial(tt)
	if snap := a.Snapshot(); snap != nil {
		t.Fatalf("nil accounter snapshot = %+v, want nil", snap)
	}
	if (*PhaseSnapshot)(nil).PhaseNS("predict") != 0 {
		t.Fatal("nil snapshot PhaseNS != 0")
	}
}

func TestPhaseBracketing(t *testing.T) {
	a := NewPhaseAccounter()
	a.StartSearch(1)
	h := a.Shard(0)

	tok := h.Begin()
	time.Sleep(time.Millisecond)
	h.End(tok, PhasePredict)

	snap := a.Snapshot()
	if got := snap.PhaseNS(PhasePredict.String()); got <= 0 {
		t.Fatalf("predict ns = %d, want > 0", got)
	}
	var count int64
	for _, p := range snap.Phases {
		if p.Phase == "predict" {
			count = p.Count
		}
	}
	if count != 1 {
		t.Fatalf("predict count = %d, want 1", count)
	}
}

// TestTrialRemainderSumsToTrialTime: the integrate remainder is defined as
// trial total minus the schedule and xfer booked inside the trial, so the
// three in-trial phases must sum exactly to the measured trial time
// (coverage 100% by construction).
func TestTrialRemainderSumsToTrialTime(t *testing.T) {
	a := NewPhaseAccounter()
	a.StartSearch(1)
	h := a.Shard(0)

	for i := 0; i < 5; i++ {
		tt := h.BeginTrial()
		st := h.Begin()
		time.Sleep(200 * time.Microsecond)
		h.End(st, PhaseSchedule)
		xt := h.Begin()
		time.Sleep(100 * time.Microsecond)
		h.End(xt, PhaseXfer)
		time.Sleep(100 * time.Microsecond) // unbracketed: must land in integrate
		h.EndTrial(tt)
	}

	snap := a.Snapshot()
	if snap.Trials != 5 {
		t.Fatalf("trials = %d, want 5", snap.Trials)
	}
	inTrial := snap.PhaseNS("schedule") + snap.PhaseNS("xfer") + snap.PhaseNS("integrate")
	if inTrial != snap.TrialNS {
		t.Fatalf("in-trial phases sum to %d ns, trial time is %d ns", inTrial, snap.TrialNS)
	}
	if snap.CoveragePct < 99.9 || snap.CoveragePct > 100.1 {
		t.Fatalf("coverage = %.2f%%, want 100%%", snap.CoveragePct)
	}
	if snap.PhaseNS("integrate") <= 0 {
		t.Fatal("no remainder booked to integrate")
	}
}

// TestStartSearchGrowsAndCarries: repeated searches on one accounter (a
// profiling loop) must accumulate — growing the shard table carries the old
// cells, and a smaller later search must not drop them.
func TestStartSearchGrowsAndCarries(t *testing.T) {
	a := NewPhaseAccounter()
	a.StartSearch(1)
	h := a.Shard(0)
	tok := h.Begin()
	h.End(tok, PhaseSchedule)

	a.StartSearch(4)
	h3 := a.Shard(3)
	tok = h3.Begin()
	h3.End(tok, PhaseSchedule)

	a.StartSearch(2) // shrink request: table must keep its 4 cells
	h3b := a.Shard(3)
	tok = h3b.Begin()
	h3b.End(tok, PhaseSchedule)

	snap := a.Snapshot()
	var count int64
	for _, p := range snap.Phases {
		if p.Phase == "schedule" {
			count = p.Count
		}
	}
	if count != 3 {
		t.Fatalf("schedule count = %d, want 3 (accumulated across searches)", count)
	}
}

// TestShardOutOfRangeFallsBackToGlobal: an index beyond the table books on
// the global cell instead of dropping the measurement.
func TestShardOutOfRangeFallsBackToGlobal(t *testing.T) {
	a := NewPhaseAccounter()
	a.StartSearch(1)
	h := a.Shard(99)
	if h == nil {
		t.Fatal("out-of-range shard returned nil")
	}
	tok := h.Begin()
	h.End(tok, PhaseCheckpoint)
	snap := a.Snapshot()
	var count int64
	for _, p := range snap.Phases {
		if p.Phase == "checkpoint" {
			count = p.Count
		}
	}
	if count != 1 {
		t.Fatalf("checkpoint count = %d, want 1", count)
	}
}

// TestAllocCounting: in alloc mode a bracket that allocates must book a
// positive allocation delta against its phase.
func TestAllocCounting(t *testing.T) {
	a := NewPhaseAccounter()
	a.StartSearch(1)
	a.EnableAllocCounting()
	h := a.Shard(0)

	tok := h.Begin()
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	h.End(tok, PhasePredict)
	_ = sink

	snap := a.Snapshot()
	if !snap.AllocMode {
		t.Fatal("snapshot does not report alloc mode")
	}
	var st PhaseStat
	for _, p := range snap.Phases {
		if p.Phase == "predict" {
			st = p
		}
	}
	if st.Allocs < 256 {
		t.Fatalf("predict allocs = %d, want >= 256", st.Allocs)
	}
	if st.Bytes < 256*1024 {
		t.Fatalf("predict bytes = %d, want >= %d", st.Bytes, 256*1024)
	}
}

// TestRunStatsSnapshotCarriesPhases: an attached accounter surfaces in the
// stats snapshot, and the first attachment wins.
func TestRunStatsSnapshotCarriesPhases(t *testing.T) {
	s := NewRunStats("x")
	if snap := s.Snapshot(); snap.Phases != nil {
		t.Fatal("phases present before attach")
	}
	a := NewPhaseAccounter()
	a.StartSearch(1)
	h := a.Shard(0)
	tok := h.Begin()
	h.End(tok, PhaseSchedule)
	s.AttachPhases(a)
	s.AttachPhases(NewPhaseAccounter()) // loser: first attach wins

	snap := s.Snapshot()
	if snap.Phases == nil {
		t.Fatal("no phases in snapshot after attach")
	}
	if snap.Phases.PhaseNS("schedule") <= 0 {
		t.Fatal("snapshot phases came from the wrong accounter")
	}
}
