package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingSinkExactDropAccounting pins the RingSub contract under real
// contention: with several concurrent writers and a reader that drains in
// bursts (stalling in between, forcing evictions), every emitted event is
// either delivered on the channel or counted in Dropped() — no event is
// lost unaccounted, and no wakeup is lost (the reader always sees the
// channel close after the sink closes).
func TestRingSinkExactDropAccounting(t *testing.T) {
	const writers, perWriter = 4, 2000
	ring := NewRingSink(64)
	_, sub := ring.Subscribe(32) // small buffer: evictions guaranteed

	var received int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for range sub.Events() {
			received++
			// Stall periodically so the writers outrun the 32-slot buffer
			// and push() has to evict.
			if i++; i%100 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ring.Emit(Event{Kind: KindPoint, Name: "trial",
					Fields: map[string]any{"w": w, "i": i}})
			}
		}(w)
	}
	wg.Wait()
	ring.Close() // closes sub's channel after pending events drain

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reader never observed the channel close (lost wakeup)")
	}

	total := int64(writers * perWriter)
	if got := received + sub.Dropped(); got != total {
		t.Fatalf("delivered %d + dropped %d = %d, want exactly %d emitted",
			received, sub.Dropped(), got, total)
	}
	if sub.Dropped() == 0 {
		t.Log("warning: no drops occurred; eviction path not exercised this run")
	}
	// The replay ring kept the newest capacity events and counted every
	// overwrite of an older one.
	if ring.Len() != ring.Cap() {
		t.Fatalf("ring retained %d of %d", ring.Len(), ring.Cap())
	}
	if ow := ring.Overwritten(); ow != total-int64(ring.Cap()) {
		t.Fatalf("overwritten %d, want %d", ow, total-int64(ring.Cap()))
	}
}

// TestReplayDemuxesCollidingLocalSpanIDs pins the begin-table demux: two
// processes' JSONL files interleaved into one reader collide on local span
// IDs (both tracers number from 1) but carry distinct trace IDs, and the
// replayer must attribute each end event's begin-side fields to its own
// tracer. With a single shared begin table, trace B's "BAD" begin would
// overwrite trace A's span-1 entry, so A's kept count would land on B's
// partition and B's end would find nothing.
func TestReplayDemuxesCollidingLocalSpanIDs(t *testing.T) {
	mkTrace := func(trace string, partition, kept int) []string {
		return []string{
			line(t, Event{TNS: 0, Kind: KindBegin, Name: "BAD", Span: 1, Trace: trace,
				Fields: map[string]any{"partition": partition}}),
			line(t, Event{TNS: 10, Kind: KindPoint, Name: "trial", Span: 1, Trace: trace,
				Fields: map[string]any{"feasible": partition == 1, "reason": "no-perf"}}),
			line(t, Event{TNS: 100, Kind: KindEnd, Name: "BAD", Span: 1, Trace: trace,
				DurNS: 100, Fields: map[string]any{"kept": kept}}),
		}
	}
	la := mkTrace("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1", 1, 7)
	lb := mkTrace("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb2", 2, 3)

	// Interleave line by line — stricter than concatenating whole files.
	var mixed strings.Builder
	for i := range la {
		mixed.WriteString(la[i])
		mixed.WriteString(lb[i])
	}
	rep, err := Replay(strings.NewReader(mixed.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 6 {
		t.Fatalf("events = %d, want 6", rep.Events)
	}
	// Each end event found its own begin's partition field: partition 1
	// kept 7 designs, partition 2 kept 3.
	if len(rep.Partitions) != 2 || rep.Partitions[1] != 7 || rep.Partitions[2] != 3 {
		t.Fatalf("partitions %v, want map[1:7 2:3]", rep.Partitions)
	}
	if rep.Trials != 2 || rep.Feasible != 1 {
		t.Fatalf("trials=%d feasible=%d, want 2/1", rep.Trials, rep.Feasible)
	}
	if rep.Reasons["no-perf"] != 1 {
		t.Fatalf("reasons %v, want no-perf:1", rep.Reasons)
	}
	st := rep.Stages["BAD"]
	if st.Count != 2 || st.TotalNS != 200 {
		t.Fatalf("BAD stage %+v, want count 2 total 200ns", st)
	}
}

func line(t *testing.T, ev Event) string {
	t.Helper()
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}
