package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestTeeSink(t *testing.T) {
	a, b := NewCountingSink(), NewCountingSink()
	tee := NewTeeSink(a, nil, b)
	tee.Emit(Event{Kind: KindPoint, Name: "x"})
	tee.Emit(Event{Kind: KindPoint, Name: "y"})
	for _, s := range []*CountingSink{a, b} {
		if s.Total() != 2 {
			t.Errorf("sink saw %d events, want 2", s.Total())
		}
	}
}

func TestTeeSinkDegenerate(t *testing.T) {
	if NewTeeSink() != nil {
		t.Error("empty tee should be nil")
	}
	if NewTeeSink(nil, nil) != nil {
		t.Error("all-nil tee should be nil")
	}
	c := NewCountingSink()
	if got := NewTeeSink(nil, c); got != Sink(c) {
		t.Error("single-sink tee should return the sink unwrapped")
	}
	// And a nil tee result must disable tracing entirely through New.
	if tr := New(NewTeeSink()); tr.Enabled() {
		t.Error("tracer over empty tee should be disabled")
	}
}

func TestPushSink(t *testing.T) {
	var got []string
	s := PushSink(func(ev Event) { got = append(got, ev.Name) })
	tr := New(s)
	sp := tr.Span("Run")
	sp.Point("trial")
	sp.End()
	if len(got) != 3 || got[0] != "Run" || got[1] != "trial" || got[2] != "Run" {
		t.Errorf("push sink saw %v", got)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fs, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(fs)
	sp := tr.Span("Run")
	for i := 0; i < 100; i++ {
		sp.Point("trial", F("i", i))
	}
	sp.End()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close emits are dropped, not written to the closed file.
	fs.Emit(Event{Kind: KindPoint, Name: "late"})

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if ev.Name == "late" {
			t.Fatal("post-close event reached the file")
		}
		n++
	}
	if n != 102 { // begin + 100 points + end
		t.Fatalf("file holds %d events, want 102", n)
	}
}
