package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// ProgressSink turns the trace event stream into rate-limited,
// human-readable progress lines for long runs: the current pipeline phase,
// trials examined (against the enumeration-space size when known), feasible
// count, and the instantaneous trial rate. It is designed to sit behind a
// TeeSink next to a file trace, writing to stderr, and never prints more
// than one line per interval regardless of event volume.
type ProgressSink struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	now      func() time.Time // injectable clock for tests

	start      time.Time
	lastPrint  time.Time
	lastTrials int64

	phase    string
	preds    int64 // BAD per-partition predictions completed
	trials   int64
	feasible int64
	space    int64 // enumeration-space size, when announced
	printed  bool
}

// DefaultProgressInterval is the print throttle used when interval <= 0.
const DefaultProgressInterval = 500 * time.Millisecond

// NewProgressSink returns a progress sink writing to w at most once per
// interval (DefaultProgressInterval when interval <= 0).
func NewProgressSink(w io.Writer, interval time.Duration) *ProgressSink {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return &ProgressSink{w: w, interval: interval, now: time.Now}
}

// Emit consumes one trace event, updating the counters and printing a
// throttled progress line.
func (s *ProgressSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.now()
	if s.start.IsZero() {
		s.start = t
		s.lastPrint = t
	}
	switch ev.Kind {
	case KindBegin:
		switch ev.Name {
		case "Run", "PredictPartitions", "Search":
			s.phase = ev.Name
		}
	case KindEnd:
		if ev.Name == "BAD" {
			s.preds++
		}
	case KindPoint:
		switch ev.Name {
		case "trial":
			s.trials++
			if f, _ := ev.Fields["feasible"].(bool); f {
				s.feasible++
			}
		case "space":
			// Accumulate: multi-search runs (the experiments) announce one
			// space per search, and trials count across all of them.
			if n, ok := numField(ev.Fields["combinations"]); ok {
				s.space += n
			}
		}
	}
	if t.Sub(s.lastPrint) < s.interval {
		return
	}
	s.print(t)
}

// Flush prints one final line summarizing the run so far (even if the
// throttle would suppress it). Call it once after the run finishes.
func (s *ProgressSink) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		return // no events at all
	}
	s.print(s.now())
}

// print emits one progress line; the caller holds s.mu.
func (s *ProgressSink) print(t time.Time) {
	dt := t.Sub(s.lastPrint).Seconds()
	rate := ""
	if dt > 0 && s.trials > s.lastTrials {
		rate = fmt.Sprintf(" (%.0f trials/s)", float64(s.trials-s.lastTrials)/dt)
	}
	trials := strconv.FormatInt(s.trials, 10)
	if s.space > 0 {
		trials += "/" + strconv.FormatInt(s.space, 10)
	}
	phase := s.phase
	if phase == "" {
		phase = "run"
	}
	fmt.Fprintf(s.w, "chop: %-17s predictions=%d trials=%s feasible=%d%s elapsed=%s\n",
		phase, s.preds, trials, s.feasible, rate,
		t.Sub(s.start).Round(time.Millisecond))
	s.lastPrint = t
	s.lastTrials = s.trials
	s.printed = true
}

// numField reads a numeric trace field, which arrives as an int family
// from a live tracer but as float64 after a JSON round trip.
func numField(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int64:
		return n, true
	case float64:
		return int64(n), true
	}
	return 0, false
}
