package obs

import (
	"net/http"
	"time"
)

// HTTP server instrumentation helpers: a wrapping http.Handler that feeds
// the registry the standard server-level signals — per-route request
// latency histograms, per-route/status-class counters and an in-flight
// gauge — using the same flat naming convention as the pipeline metrics
// ("serve.http.<route>_us"), so one registry exposes pipeline and server
// families side by side on /metrics.

// MetricsNamespace* are the registry names InstrumentHandler writes.
const (
	httpPrefix     = "serve.http."
	httpInFlight   = "serve.http.in_flight"
	httpRequestsUS = "serve.http.request_us" // aggregate across routes
	httpStreamUS   = "serve.http.stream_us"  // stream lifetimes, all routes
)

// statusWriter captures the response code and the time to first byte while
// forwarding the Flusher interface, which streaming handlers (SSE) require
// to survive wrapping.
type statusWriter struct {
	http.ResponseWriter
	status  int
	start   time.Time
	firstNS int64 // time to first header/byte, 0 until written
}

func (w *statusWriter) markFirst() {
	if w.firstNS == 0 {
		w.firstNS = time.Since(w.start).Nanoseconds()
	}
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.markFirst()
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.markFirst()
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing, so
// SSE responses stream through the instrumentation unbuffered.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass renders an HTTP status family ("2xx", "4xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	}
	return "1xx"
}

// InstrumentHandler wraps next so every request records, on m:
//
//	serve.http.<route>_us            latency histogram for the route
//	serve.http.request_us            latency histogram across all routes
//	serve.http.<route>.<class>       counter per status class (2xx, 4xx, ...)
//	serve.http.requests              counter across all routes
//	serve.http.in_flight             gauge of currently-executing requests
//
// route should be a short static label ("get_run", "metrics"), never a
// request-derived string, to keep the registry cardinality bounded. A nil
// registry disables recording but still serves. Safe for streaming
// handlers: the wrapped writer forwards http.Flusher — but use
// InstrumentStreamHandler for routes that hold connections open, or their
// lifetimes poison the request latency histograms.
func InstrumentHandler(m *Metrics, route string, next http.Handler) http.Handler {
	return instrument(m, route, false, next)
}

// InstrumentStreamHandler instruments a long-lived streaming route (SSE).
// The request latency histograms (serve.http.<route>_us and
// serve.http.request_us) record the time to first byte — the only latency
// a stream's opening has — while the stream's full lifetime goes to
// serve.http.stream_us and serve.http.<route>.lifetime_us, keeping
// minutes-long streams out of the all-routes request histogram.
func InstrumentStreamHandler(m *Metrics, route string, next http.Handler) http.Handler {
	return instrument(m, route, true, next)
}

func instrument(m *Metrics, route string, stream bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m == nil {
			next.ServeHTTP(w, r)
			return
		}
		m.AddGauge(httpInFlight, 1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, start: start}
		defer func() {
			total := float64(time.Since(start).Nanoseconds()) / 1e3
			if sw.status == 0 {
				sw.status = http.StatusOK // handler wrote nothing
			}
			us := total
			if stream {
				// Latency of a stream is its time to first byte; a stream
				// that never wrote is booked at its full (short) lifetime.
				if sw.firstNS > 0 {
					us = float64(sw.firstNS) / 1e3
				}
				m.Observe(httpStreamUS, total)
				m.Observe(httpPrefix+route+".lifetime_us", total)
			}
			m.Observe(httpPrefix+route+"_us", us)
			m.Observe(httpRequestsUS, us)
			m.Inc(httpPrefix + route + "." + statusClass(sw.status))
			m.Inc("serve.http.requests")
			m.AddGauge(httpInFlight, -1)
		}()
		next.ServeHTTP(sw, r)
	})
}
