package obs

import (
	"net/http"
	"time"
)

// HTTP server instrumentation helpers: a wrapping http.Handler that feeds
// the registry the standard server-level signals — per-route request
// latency histograms, per-route/status-class counters and an in-flight
// gauge — using the same flat naming convention as the pipeline metrics
// ("serve.http.<route>_us"), so one registry exposes pipeline and server
// families side by side on /metrics.

// MetricsNamespace* are the registry names InstrumentHandler writes.
const (
	httpPrefix     = "serve.http."
	httpInFlight   = "serve.http.in_flight"
	httpRequestsUS = "serve.http.request_us" // aggregate across routes
)

// statusWriter captures the response code while forwarding the Flusher
// interface, which streaming handlers (SSE) require to survive wrapping.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing, so
// SSE responses stream through the instrumentation unbuffered.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass renders an HTTP status family ("2xx", "4xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	}
	return "1xx"
}

// InstrumentHandler wraps next so every request records, on m:
//
//	serve.http.<route>_us            latency histogram for the route
//	serve.http.request_us            latency histogram across all routes
//	serve.http.<route>.<class>       counter per status class (2xx, 4xx, ...)
//	serve.http.requests              counter across all routes
//	serve.http.in_flight             gauge of currently-executing requests
//
// route should be a short static label ("get_run", "metrics"), never a
// request-derived string, to keep the registry cardinality bounded. A nil
// registry disables recording but still serves. Safe for streaming
// handlers: the wrapped writer forwards http.Flusher.
func InstrumentHandler(m *Metrics, route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m == nil {
			next.ServeHTTP(w, r)
			return
		}
		m.AddGauge(httpInFlight, 1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			us := float64(time.Since(start).Nanoseconds()) / 1e3
			if sw.status == 0 {
				sw.status = http.StatusOK // handler wrote nothing
			}
			m.Observe(httpPrefix+route+"_us", us)
			m.Observe(httpRequestsUS, us)
			m.Inc(httpPrefix + route + "." + statusClass(sw.status))
			m.Inc("serve.http.requests")
			m.AddGauge(httpInFlight, -1)
		}()
		next.ServeHTTP(sw, r)
	})
}
