package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition for the Metrics registry.
//
// Registry names follow the pipeline's `<pkg>.<name>` convention
// ("core.reject.chip-area", "bad.predict_us"); exposition maps them to
// legal Prometheus names by prefixing "chop_" and escaping every character
// outside [a-zA-Z0-9_:] to '_'. Counters render as counter families,
// gauges as gauge families (labeled series keep their pre-rendered label
// blocks), histograms as cumulative-bucket histogram families over the
// registry's base-2 buckets. Output is deterministically ordered (sorted
// by the original registry name) so it can be golden-tested and diffed.

// PromName maps a registry metric name to a legal Prometheus metric name:
// "chop_" + the name with every character outside [a-zA-Z0-9_:] replaced
// by '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("chop_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4). Safe on a nil registry (writes nothing).
func (m *Metrics) WriteProm(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	cnames := make([]string, 0, len(m.counters))
	for k := range m.counters {
		cnames = append(cnames, k)
	}
	sort.Strings(cnames)
	for _, k := range cnames {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, m.counters[k]); err != nil {
			return err
		}
	}

	// Gauges group by base name: one TYPE line per family, then every
	// labeled series of that family in label order.
	gnames := make([]string, 0, len(m.gauges))
	for k := range m.gauges {
		gnames = append(gnames, k)
	}
	sort.Slice(gnames, func(i, j int) bool {
		gi, gj := m.gauges[gnames[i]], m.gauges[gnames[j]]
		if gi.name != gj.name {
			return gi.name < gj.name
		}
		return gi.labels < gj.labels
	})
	lastFamily := ""
	for _, k := range gnames {
		g := m.gauges[k]
		n := PromName(g.name)
		if g.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", n); err != nil {
				return err
			}
			lastFamily = g.name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", n, g.labels, promFloat(g.val)); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(m.hists))
	for k := range m.hists {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		if err := writePromHist(w, PromName(k), m.hists[k]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHist renders one histogram family: cumulative counts at each
// occupied base-2 bucket bound, the mandatory +Inf bucket, then sum and
// count. Empty buckets are elided (Prometheus buckets may be sparse).
func writePromHist(w io.Writer, name string, h *hist) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			name, promFloat(math.Exp2(float64(b))), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, h.count, name, promFloat(h.sum), name, h.count)
	return err
}

// PromText renders the registry in Prometheus text exposition format.
func (m *Metrics) PromText() string {
	var b strings.Builder
	m.WriteProm(&b) // strings.Builder never errors
	return b.String()
}

// Vars flattens the registry into an expvar-style map: counters and gauges
// under their registry name, histograms expanded into <name>.count/.sum/.min/.max/
// .mean/.p50/.p90/.p99 entries. Marshalling the result produces a
// /debug/vars-shaped JSON document with deterministically sorted keys.
// Safe on a nil registry (returns an empty map).
func (m *Metrics) Vars() map[string]any {
	out := make(map[string]any)
	s := m.Snapshot()
	for k, v := range s.Counters {
		out[k] = v
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k+".count"] = h.Count
		out[k+".sum"] = h.Sum
		out[k+".min"] = h.Min
		out[k+".max"] = h.Max
		out[k+".mean"] = h.Mean
		out[k+".p50"] = h.P50
		out[k+".p90"] = h.P90
		out[k+".p99"] = h.P99
	}
	return out
}
