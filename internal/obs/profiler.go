package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileConfig names the runtime/pprof outputs a run should collect.
// Empty paths disable the corresponding profile.
type ProfileConfig struct {
	// CPUFile receives a CPU profile covering Start..Stop.
	CPUFile string
	// MemFile receives a heap profile taken at Stop (after a GC, so it
	// reflects live memory, not transient garbage).
	MemFile string
	// BlockFile receives a goroutine-blocking profile covering
	// Start..Stop.
	BlockFile string
	// BlockRate is the ns-per-blocking-event sampling rate passed to
	// runtime.SetBlockProfileRate while a BlockFile is set; <= 0 selects
	// 1 (record every event).
	BlockRate int
}

func (c ProfileConfig) enabled() bool {
	return c.CPUFile != "" || c.MemFile != "" || c.BlockFile != ""
}

// Profiler wraps runtime/pprof start/stop/flush with file handling so any
// command or test can be flamegraphed with two calls:
//
//	p, err := obs.StartProfiler(obs.ProfileConfig{CPUFile: "cpu.pprof"})
//	...
//	defer p.Stop()
//
// A nil *Profiler is valid and Stop on it no-ops, so callers can hold the
// result of a disabled StartProfiler without checks.
type Profiler struct {
	cfg ProfileConfig
	cpu *os.File
}

// StartProfiler begins collecting the configured profiles. It returns
// (nil, nil) when the config enables nothing. On error, anything already
// started is stopped and cleaned up.
func StartProfiler(cfg ProfileConfig) (*Profiler, error) {
	if !cfg.enabled() {
		return nil, nil
	}
	p := &Profiler{cfg: cfg}
	if cfg.CPUFile != "" {
		f, err := os.Create(cfg.CPUFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		p.cpu = f
	}
	if cfg.BlockFile != "" {
		rate := cfg.BlockRate
		if rate <= 0 {
			rate = 1
		}
		runtime.SetBlockProfileRate(rate)
	}
	return p, nil
}

// Stop flushes and closes every profile started by StartProfiler. It
// reports the first error but always attempts every stop, and is safe to
// call on a nil Profiler and to call more than once (subsequent calls
// no-op).
func (p *Profiler) Stop() error {
	if p == nil || !p.cfg.enabled() {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		keep(p.cpu.Close())
		p.cpu = nil
	}
	if p.cfg.MemFile != "" {
		f, err := os.Create(p.cfg.MemFile)
		keep(err)
		if err == nil {
			runtime.GC() // materialize live-heap statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if p.cfg.BlockFile != "" {
		f, err := os.Create(p.cfg.BlockFile)
		keep(err)
		if err == nil {
			keep(pprof.Lookup("block").WriteTo(f, 0))
			keep(f.Close())
		}
		runtime.SetBlockProfileRate(0)
	}
	p.cfg = ProfileConfig{}
	return first
}
