package obs

import "runtime/debug"

// BuildInfo identifies the running binary, read from the metadata the Go
// linker embeds in every build (runtime/debug.ReadBuildInfo) — no ldflags
// stamping required.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary ("go1.24.0").
	GoVersion string
	// Revision is the VCS revision the binary was built from, "unknown"
	// when the build had no VCS metadata (e.g. `go test` in a tarball).
	Revision string
	// Dirty reports uncommitted local modifications at build time.
	Dirty bool
	// Module is the main module path ("chop").
	Module string
}

// ReadBuildInfo extracts the binary's build identity. It degrades to
// "unknown" fields rather than failing, so it is always safe to expose.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: "unknown", Revision: "unknown", Module: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	if info.Main.Path != "" {
		bi.Module = info.Main.Path
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				bi.Revision = s.Value
			}
		case "vcs.modified":
			bi.Dirty = s.Value == "true"
		}
	}
	return bi
}

// RecordBuildInfo exposes the binary's build identity on the registry as
// the conventional Prometheus info gauge:
//
//	chop_build_info{go_version="go1.24.0",vcs_revision="abc123"} 1
//
// Safe on a nil registry.
func RecordBuildInfo(m *Metrics) {
	bi := ReadBuildInfo()
	m.SetGaugeLabels("build_info", map[string]string{
		"go_version":   bi.GoVersion,
		"vcs_revision": bi.Revision,
	}, 1)
}
