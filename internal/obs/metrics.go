package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a concurrency-safe counter and histogram registry. A nil
// *Metrics is valid and drops every update, so instrumented code needs no
// enabled-checks outside hot loops. The zero value is ready to use.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*hist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Inc adds 1 to the named counter.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add adds delta to the named counter.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns the current value of a counter (0 if absent).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Observe records one sample into the named histogram. Samples are
// unitless; by convention the pipeline uses "_us" name suffixes for
// microsecond latencies.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.hists == nil {
		m.hists = make(map[string]*hist)
	}
	h := m.hists[name]
	if h == nil {
		h = &hist{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Timer starts a latency measurement; calling the returned function
// observes the elapsed time in microseconds on the named histogram:
//
//	defer m.Timer("core.search_us")()
func (m *Metrics) Timer(name string) func() {
	if m == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { m.Observe(name, float64(time.Since(t0).Nanoseconds())/1e3) }
}

// histBuckets is the number of base-2 exponential histogram buckets;
// bucket b holds samples in (2^(b-1), 2^b], bucket 0 holds v <= 1.
const histBuckets = 64

type hist struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func (h *hist) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v float64) int {
	if !(v > 1) { // also catches NaN
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// quantile estimates the q-quantile (0..1) from the bucket counts as the
// upper bound of the bucket holding the q-th sample, clamped into the
// observed [min, max] range.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen > rank {
			up := math.Exp2(float64(b))
			if up > h.max {
				up = h.max
			}
			if up < h.min {
				up = h.min
			}
			return up
		}
	}
	return h.max
}

// quantiles estimates several quantiles in one call. qs must be ascending;
// the reported values are forced monotonically non-decreasing, so the
// independent [min, max] clamping of quantile can never report p50 > p90
// on skewed bucket contents.
func (h *hist) quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h.count == 0 {
		return out
	}
	floor := math.Inf(-1)
	for i, q := range qs {
		v := h.quantile(q)
		if v < floor {
			v = floor
		}
		floor = v
		out[i] = v
	}
	return out
}

// HistSnapshot is the exported state of one histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of the whole registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Safe to call on a nil registry (returns an
// empty snapshot).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, h := range m.hists {
		q := h.quantiles(0.50, 0.90, 0.99)
		hs := HistSnapshot{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: q[0], P90: q[1], P99: q[2],
		}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
		}
		s.Histograms[k] = hs
	}
	return s
}

// Text renders the registry as an aligned, sorted plain-text dump.
func (m *Metrics) Text() string {
	s := m.Snapshot()
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		names := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, "  %-36s %12d\n", k, s.Counters[k])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		names := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-36s count=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
				k, h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
	}
	if b.Len() == 0 {
		return "no metrics recorded\n"
	}
	return b.String()
}

// JSON renders the registry snapshot as indented JSON.
func (m *Metrics) JSON() ([]byte, error) {
	return json.MarshalIndent(m.Snapshot(), "", "  ")
}
