package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a concurrency-safe counter, gauge and histogram registry. A
// nil *Metrics is valid and drops every update, so instrumented code needs
// no enabled-checks outside hot loops. The zero value is ready to use.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]*gauge
	hists    map[string]*hist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Inc adds 1 to the named counter.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add adds delta to the named counter.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns the current value of a counter (0 if absent).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// gauge is one point-in-time value, optionally carrying a rendered
// Prometheus label block (`{k="v",...}`). Registry maps key gauges by
// name+labels so one name can expose several labeled series.
type gauge struct {
	name   string // registry name without labels
	labels string // rendered label block, "" when unlabeled
	val    float64
}

// key returns the registry key (and display name) of the gauge.
func (g *gauge) key() string { return g.name + g.labels }

// SetGauge sets the named gauge to v.
func (m *Metrics) SetGauge(name string, v float64) { m.setGauge(name, "", v, false) }

// AddGauge adds delta (which may be negative) to the named gauge. Gauges
// start at 0, so matched +1/-1 pairs implement in-flight counts.
func (m *Metrics) AddGauge(name string, delta float64) { m.setGauge(name, "", delta, true) }

// SetGaugeLabels sets a labeled gauge series, e.g. the build-info idiom
//
//	m.SetGaugeLabels("build_info", map[string]string{"go_version": v}, 1)
//
// which exposes as `chop_build_info{go_version="..."} 1`. Labels are
// rendered sorted by key with Prometheus escaping, so the series identity
// is deterministic.
func (m *Metrics) SetGaugeLabels(name string, labels map[string]string, v float64) {
	m.setGauge(name, renderLabels(labels), v, false)
}

func (m *Metrics) setGauge(name, labels string, v float64, add bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]*gauge)
	}
	g := m.gauges[name+labels]
	if g == nil {
		g = &gauge{name: name, labels: labels}
		m.gauges[name+labels] = g
	}
	if add {
		g.val += v
	} else {
		g.val = v
	}
	m.mu.Unlock()
}

// Gauge returns the current value of an unlabeled gauge (0 if absent).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g := m.gauges[name]; g != nil {
		return g.val
	}
	return 0
}

// renderLabels renders a Prometheus label block with sorted keys and
// escaped values (backslash, double quote and newline, per the text
// exposition format). Returns "" for an empty map.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Merge folds another registry into m: counters add, histograms merge
// bucket-wise (count, sum, min, max and bucket occupancy all combine), and
// gauges take the other registry's latest value. It lets a long-lived
// aggregate registry (the serve package's global /metrics) absorb the
// per-run registries jobs were executed with. Nil receivers and nil/empty
// arguments are no-ops; other is locked only while its state is copied, so
// concurrent updates to either registry stay safe.
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	// Deep-copy other's state under its own lock, then apply under m's, so
	// the two locks are never held together (no ordering deadlock).
	other.mu.Lock()
	counters := make(map[string]int64, len(other.counters))
	for k, v := range other.counters {
		counters[k] = v
	}
	gauges := make([]gauge, 0, len(other.gauges))
	for _, g := range other.gauges {
		gauges = append(gauges, *g)
	}
	hists := make(map[string]hist, len(other.hists))
	for k, h := range other.hists {
		hists[k] = *h // value copy; buckets is an array
	}
	other.mu.Unlock()

	for k, v := range counters {
		m.Add(k, v)
	}
	for _, g := range gauges {
		m.setGauge(g.name, g.labels, g.val, false)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hists == nil && len(hists) > 0 {
		m.hists = make(map[string]*hist)
	}
	for k, oh := range hists {
		h := m.hists[k]
		if h == nil {
			cp := oh
			m.hists[k] = &cp
			continue
		}
		if oh.count > 0 {
			if h.count == 0 || oh.min < h.min {
				h.min = oh.min
			}
			if h.count == 0 || oh.max > h.max {
				h.max = oh.max
			}
			h.count += oh.count
			h.sum += oh.sum
			for b := range oh.buckets {
				h.buckets[b] += oh.buckets[b]
			}
		}
	}
}

// Observe records one sample into the named histogram. Samples are
// unitless; by convention the pipeline uses "_us" name suffixes for
// microsecond latencies.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.hists == nil {
		m.hists = make(map[string]*hist)
	}
	h := m.hists[name]
	if h == nil {
		h = &hist{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Timer starts a latency measurement; calling the returned function
// observes the elapsed time in microseconds on the named histogram:
//
//	defer m.Timer("core.search_us")()
func (m *Metrics) Timer(name string) func() {
	if m == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { m.Observe(name, float64(time.Since(t0).Nanoseconds())/1e3) }
}

// histBuckets is the number of base-2 exponential histogram buckets;
// bucket b holds samples in (2^(b-1), 2^b], bucket 0 holds v <= 1.
const histBuckets = 64

type hist struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func (h *hist) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v float64) int {
	if !(v > 1) { // also catches NaN
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// quantile estimates the q-quantile (0..1) from the bucket counts as the
// upper bound of the bucket holding the q-th sample, clamped into the
// observed [min, max] range.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen > rank {
			up := math.Exp2(float64(b))
			if up > h.max {
				up = h.max
			}
			if up < h.min {
				up = h.min
			}
			return up
		}
	}
	return h.max
}

// quantiles estimates several quantiles in one call. qs must be ascending;
// the reported values are forced monotonically non-decreasing, so the
// independent [min, max] clamping of quantile can never report p50 > p90
// on skewed bucket contents.
func (h *hist) quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h.count == 0 {
		return out
	}
	floor := math.Inf(-1)
	for i, q := range qs {
		v := h.quantile(q)
		if v < floor {
			v = floor
		}
		floor = v
		out[i] = v
	}
	return out
}

// HistSnapshot is the exported state of one histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of the whole registry. Gauge keys
// include their rendered label block when the gauge is labeled.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Safe to call on a nil registry (returns an
// empty snapshot).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, g := range m.gauges {
		s.Gauges[k] = g.val
	}
	for k, h := range m.hists {
		q := h.quantiles(0.50, 0.90, 0.99)
		hs := HistSnapshot{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: q[0], P90: q[1], P99: q[2],
		}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
		}
		s.Histograms[k] = hs
	}
	return s
}

// Text renders the registry as an aligned, sorted plain-text dump.
func (m *Metrics) Text() string {
	s := m.Snapshot()
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		names := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, "  %-36s %12d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		names := make([]string, 0, len(s.Gauges))
		for k := range s.Gauges {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, "  %-36s %12g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		names := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-36s count=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
				k, h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
	}
	if b.Len() == 0 {
		return "no metrics recorded\n"
	}
	return b.String()
}

// JSON renders the registry snapshot as indented JSON.
func (m *Metrics) JSON() ([]byte, error) {
	return json.MarshalIndent(m.Snapshot(), "", "  ")
}
