package mem

import "testing"

func ram() Block {
	return Block{Name: "MA", Words: 1024, Width: 16, Ports: 1, AccessTime: 100, Area: 20000, ControlPins: 2}
}

func TestBlockValidate(t *testing.T) {
	if err := ram().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Block){
		func(b *Block) { b.Name = "" },
		func(b *Block) { b.Words = 0 },
		func(b *Block) { b.Width = 0 },
		func(b *Block) { b.Ports = 0 },
		func(b *Block) { b.AccessTime = 0 },
		func(b *Block) { b.Area = 0 }, // on-chip with no area
		func(b *Block) { b.ControlPins = -1 },
	}
	for i, mut := range cases {
		b := ram()
		mut(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid block accepted: %+v", i, b)
		}
	}
	off := ram()
	off.OffChip = true
	off.Area = 0
	if err := off.Validate(); err != nil {
		t.Fatalf("off-chip block with zero area rejected: %v", err)
	}
}

func TestBits(t *testing.T) {
	if got := ram().Bits(); got != 1024*16 {
		t.Fatalf("Bits = %d", got)
	}
}

func TestBandwidthPerCycle(t *testing.T) {
	b := ram() // 100ns access, 16 bits, 1 port
	if got := b.BandwidthPerCycle(50); got != 0 {
		t.Fatalf("cycle < access must give 0, got %d", got)
	}
	if got := b.BandwidthPerCycle(100); got != 16 {
		t.Fatalf("one access per cycle: %d", got)
	}
	if got := b.BandwidthPerCycle(300); got != 48 {
		t.Fatalf("three accesses per cycle: %d", got)
	}
	b.Ports = 2
	if got := b.BandwidthPerCycle(100); got != 32 {
		t.Fatalf("dual port: %d", got)
	}
}

func TestDataPins(t *testing.T) {
	b := ram() // 1024 words -> 10 address bits, 16 data, 2 control
	if got := b.DataPins(); got != 28 {
		t.Fatalf("DataPins = %d, want 28", got)
	}
	b.Words = 1
	if got := b.DataPins(); got != 18 {
		t.Fatalf("single word needs no address bits: %d", got)
	}
}

func TestSystemValidate(t *testing.T) {
	s := System{Blocks: []Block{ram()}, Assign: Assignment{"MA": 0}}
	if err := s.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := System{Blocks: []Block{ram()}, Assign: Assignment{"MB": 0}}
	if err := bad.Validate(2); err == nil {
		t.Fatal("unknown block assignment accepted")
	}
	bad2 := System{Blocks: []Block{ram()}, Assign: Assignment{"MA": 5}}
	if err := bad2.Validate(2); err == nil {
		t.Fatal("out-of-range chip accepted")
	}
	dup := System{Blocks: []Block{ram(), ram()}}
	if err := dup.Validate(1); err == nil {
		t.Fatal("duplicate block accepted")
	}
}

func TestSystemLookups(t *testing.T) {
	s := System{Blocks: []Block{ram()}, Assign: Assignment{"MA": 1}}
	if _, ok := s.Block("MA"); !ok {
		t.Fatal("Block lookup failed")
	}
	if _, ok := s.Block("nope"); ok {
		t.Fatal("phantom block found")
	}
	if !s.OnChip("MA", 1) || s.OnChip("MA", 0) {
		t.Fatal("OnChip wrong")
	}
	if s.OnChip("unassigned", 0) {
		t.Fatal("unassigned block reported on-chip")
	}
}

func TestAreaOn(t *testing.T) {
	b2 := ram()
	b2.Name = "MB"
	b2.OffChip = true
	b2.Area = 0
	s := System{Blocks: []Block{ram(), b2}, Assign: Assignment{"MA": 0, "MB": 0}}
	if got := s.AreaOn(0); got != 20000 {
		t.Fatalf("AreaOn(0) = %v (off-chip block must not count)", got)
	}
	if got := s.AreaOn(1); got != 0 {
		t.Fatalf("AreaOn(1) = %v", got)
	}
}

func TestSystemJSON(t *testing.T) {
	s := System{Blocks: []Block{ram()}, Assign: Assignment{"MA": 0}}
	data, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Blocks) != 1 || back.Assign["MA"] != 0 {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}
