// Package mem models the memory input of CHOP (paper section 2.2, fourth
// input group): on- and off-chip memory modules, their assignment to chips,
// and the memory bandwidth bookkeeping used during system integration. The
// paper assumes the memory hierarchy is designed before partitioning; CHOP
// only checks that the predicted accesses keep every block's bandwidth
// feasible and reserves pins for off-chip memory traffic (Select and R/W
// lines are not shared; paper section 2.4).
package mem

import (
	"encoding/json"
	"fmt"
	"math"
)

// Block is one memory module.
type Block struct {
	Name  string `json:"name"`
	Words int    `json:"words"`
	Width int    `json:"width"` // data width in bits
	Ports int    `json:"ports"` // simultaneous accesses per cycle
	// AccessTime is the read/write cycle time in nanoseconds.
	AccessTime float64 `json:"accessTime"`
	// Area is the silicon area in square mils when the block is placed on a
	// chip; zero (with OffChip true) for off-the-shelf memory chips.
	Area float64 `json:"area"`
	// OffChip marks an off-the-shelf memory chip: it consumes no project
	// area on any chip in the set, but all its traffic crosses chip pins.
	OffChip bool `json:"offChip"`
	// ControlPins is the number of unshared control pins (Select, R/W, ...)
	// a chip must reserve to talk to this block when the traffic crosses
	// the chip boundary.
	ControlPins int `json:"controlPins"`
}

// Validate checks the block's parameters.
func (b Block) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("mem: block with empty name")
	}
	if b.Words <= 0 || b.Width <= 0 {
		return fmt.Errorf("mem %q: non-positive geometry", b.Name)
	}
	if b.Ports <= 0 {
		return fmt.Errorf("mem %q: non-positive port count", b.Name)
	}
	if b.AccessTime <= 0 {
		return fmt.Errorf("mem %q: non-positive access time", b.Name)
	}
	if !b.OffChip && b.Area <= 0 {
		return fmt.Errorf("mem %q: on-chip block needs a positive area", b.Name)
	}
	if b.ControlPins < 0 {
		return fmt.Errorf("mem %q: negative control pins", b.Name)
	}
	return nil
}

// Bits returns the total capacity in bits.
func (b Block) Bits() int { return b.Words * b.Width }

// BandwidthPerCycle returns how many bits the block can move per clock cycle
// of the given period: ports * width * floor(cycle/accessTime), at least one
// access per cycle when the access time fits the cycle, zero otherwise.
func (b Block) BandwidthPerCycle(cycle float64) int {
	if cycle < b.AccessTime {
		return 0
	}
	accesses := int(math.Floor(cycle / b.AccessTime))
	return b.Ports * b.Width * accesses
}

// DataPins returns the number of chip pins one off-chip access path to this
// block occupies: the data bus plus address lines plus unshared control.
func (b Block) DataPins() int {
	addr := 0
	for w := b.Words; w > 1; w = (w + 1) / 2 {
		addr++
	}
	return b.Width + addr + b.ControlPins
}

// Assignment maps memory block names to chip indices. Blocks absent from
// the map are off-the-shelf parts living outside the chip set (every access
// is off-chip for every chip).
type Assignment map[string]int

// System is the set of memory blocks plus their chip assignment.
type System struct {
	Blocks []Block    `json:"blocks"`
	Assign Assignment `json:"assign"`
}

// Validate checks blocks and that assignments reference existing blocks and
// valid chip indices.
func (s System) Validate(numChips int) error {
	byName := make(map[string]bool, len(s.Blocks))
	for _, b := range s.Blocks {
		if err := b.Validate(); err != nil {
			return err
		}
		if byName[b.Name] {
			return fmt.Errorf("mem: duplicate block %q", b.Name)
		}
		byName[b.Name] = true
	}
	for name, ci := range s.Assign {
		if !byName[name] {
			return fmt.Errorf("mem: assignment references unknown block %q", name)
		}
		if ci < 0 || ci >= numChips {
			return fmt.Errorf("mem: block %q assigned to chip %d of %d", name, ci, numChips)
		}
	}
	return nil
}

// Block returns the named block, or false.
func (s System) Block(name string) (Block, bool) {
	for _, b := range s.Blocks {
		if b.Name == name {
			return b, true
		}
	}
	return Block{}, false
}

// OnChip reports whether accesses from the given chip to the named block
// stay on-chip (no pins consumed).
func (s System) OnChip(name string, chipIdx int) bool {
	ci, ok := s.Assign[name]
	return ok && ci == chipIdx
}

// AreaOn returns the memory area placed on the given chip.
func (s System) AreaOn(chipIdx int) float64 {
	var a float64
	for _, b := range s.Blocks {
		if ci, ok := s.Assign[b.Name]; ok && ci == chipIdx && !b.OffChip {
			a += b.Area
		}
	}
	return a
}

// ToJSON serializes the memory system.
func (s System) ToJSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// FromJSON parses a memory system; Validate must be called separately since
// the chip count is not known here.
func FromJSON(data []byte) (System, error) {
	var s System
	if err := json.Unmarshal(data, &s); err != nil {
		return System{}, fmt.Errorf("mem: parse: %w", err)
	}
	return s, nil
}
