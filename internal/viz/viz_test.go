package viz

import (
	"strings"
	"testing"

	"chop/internal/core"
)

func TestScatterSVGStructure(t *testing.T) {
	pts := []core.SpacePoint{
		{AreaML: 50000, DelayNS: 20000, Feasible: true},
		{AreaML: 90000, DelayNS: 15000, Feasible: false},
		{AreaML: 70000, DelayNS: 30000, Feasible: true},
	}
	svg := ScatterSVG("figure 7", pts)
	for _, want := range []string{
		"<svg", "</svg>", "figure 7", "total area", "system delay",
		`fill="black"`, `fill="none"`,
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("expected 3 points, SVG has %d circles", strings.Count(svg, "<circle"))
	}
}

func TestScatterSVGEmptyAndDegenerate(t *testing.T) {
	if svg := ScatterSVG("empty", nil); !strings.Contains(svg, "no points") {
		t.Fatal("empty scatter should say so")
	}
	// identical points: scaling must not divide by zero
	same := []core.SpacePoint{{AreaML: 1, DelayNS: 1}, {AreaML: 1, DelayNS: 1}}
	svg := ScatterSVG("same", same)
	if !strings.Contains(svg, "</svg>") || strings.Contains(svg, "NaN") {
		t.Fatal("degenerate ranges produced invalid SVG")
	}
}

func TestScatterSVGEscapesTitle(t *testing.T) {
	svg := ScatterSVG(`<&">`, []core.SpacePoint{{AreaML: 1, DelayNS: 1}})
	if strings.Contains(svg, `<&">`+"</text>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "&lt;&amp;&quot;&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestGantt(t *testing.T) {
	g := core.GlobalDesign{
		IIMain:    10,
		DelayMain: 20,
		Schedule: []core.TaskSpan{
			{Name: "P1", Start: 0, Dur: 10},
			{Name: "T:P1->P2", Start: 10, Dur: 2, Chips: []int{0, 1}},
			{Name: "P2", Start: 12, Dur: 8},
		},
	}
	out := Gantt(g, 40)
	if !strings.Contains(out, "system delay: 20") {
		t.Fatalf("header missing: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "[c1,c2]") {
		t.Fatalf("transfer chips missing: %s", lines[2])
	}
	// P2 bar must start after P1's bar ends
	p1end := strings.LastIndex(lines[1], "#")
	p2start := strings.Index(lines[3], "#")
	if p2start <= p1end-3 { // allow rounding
		t.Fatalf("bars out of order: P1 ends col %d, P2 starts col %d", p1end, p2start)
	}
}

func TestGanttScalesLongSchedules(t *testing.T) {
	g := core.GlobalDesign{
		DelayMain: 1000,
		Schedule:  []core.TaskSpan{{Name: "P1", Start: 0, Dur: 1000}},
	}
	out := Gantt(g, 50)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Fatalf("line too long (%d): %q", len(line), line)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(core.GlobalDesign{}, 40); !strings.Contains(out, "no schedule") {
		t.Fatalf("empty gantt: %q", out)
	}
}
