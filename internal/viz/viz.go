// Package viz renders CHOP's results for human consumption: the
// design-space scatter of the paper's Figures 7 and 8 as standalone SVG
// documents, and a global design's urgency-scheduled task timeline as a
// text Gantt chart (the view a designer uses to see where the system delay
// goes).
package viz

import (
	"fmt"
	"math"
	"strings"

	"chop/internal/core"
)

// SVG geometry constants.
const (
	svgW, svgH             = 720, 480
	padL, padR, padT, padB = 64, 24, 32, 48
)

// ScatterSVG renders explored design points (total area vs. system delay)
// as a self-contained SVG, feasible points filled, infeasible points
// hollow — the visual of paper Figures 7 and 8.
func ScatterSVG(title string, points []core.SpacePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		svgW, svgH, svgW, svgH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14">%s</text>`,
		padL, escape(title))
	if len(points) == 0 {
		b.WriteString(`<text x="300" y="240" font-family="sans-serif">no points</text></svg>`)
		return b.String()
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.AreaML), math.Max(maxX, p.AreaML)
		minY, maxY = math.Min(minY, p.DelayNS), math.Max(maxY, p.DelayNS)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := float64(svgW - padL - padR)
	plotH := float64(svgH - padT - padB)
	sx := func(v float64) float64 { return float64(padL) + (v-minX)/(maxX-minX)*plotW }
	sy := func(v float64) float64 { return float64(svgH-padB) - (v-minY)/(maxY-minY)*plotH }

	// axes
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		padL, svgH-padB, svgW-padR, svgH-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		padL, padT, padL, svgH-padB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">total area (mil^2)</text>`,
		svgW/2-50, svgH-12)
	fmt.Fprintf(&b, `<text x="12" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 12 %d)">system delay (ns)</text>`,
		svgH/2, svgH/2)
	// axis extremes
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.0f</text>`,
		padL, svgH-padB+14, minX)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.0f</text>`,
		svgW-padR-40, svgH-padB+14, maxX)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.0f</text>`,
		padL-56, svgH-padB, minY)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.0f</text>`,
		padL-56, padT+10, maxY)

	for _, p := range points {
		if p.Feasible {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="black"/>`,
				sx(p.AreaML), sy(p.DelayNS))
		} else {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="none" stroke="grey"/>`,
				sx(p.AreaML), sy(p.DelayNS))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Gantt renders a global design's task timeline as text: one row per task,
// '#' for busy cycles, aligned to the system delay. width caps the chart
// columns (the timeline is scaled down for long schedules).
func Gantt(g core.GlobalDesign, width int) string {
	if width <= 0 {
		width = 64
	}
	if len(g.Schedule) == 0 {
		return "(no schedule recorded)\n"
	}
	makespan := g.DelayMain
	if makespan < 1 {
		makespan = 1
	}
	scale := 1.0
	if makespan > width {
		scale = float64(width) / float64(makespan)
	}
	col := func(t int) int {
		c := int(float64(t) * scale)
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "system delay: %d cycles (interval %d)\n", g.DelayMain, g.IIMain)
	for _, span := range g.Schedule {
		s, e := col(span.Start), col(span.Start+span.Dur)
		if e <= s {
			e = s + 1
		}
		bar := strings.Repeat(" ", s) + strings.Repeat("#", e-s)
		chips := ""
		if len(span.Chips) > 0 {
			parts := make([]string, len(span.Chips))
			for i, c := range span.Chips {
				parts[i] = fmt.Sprintf("c%d", c+1)
			}
			chips = " [" + strings.Join(parts, ",") + "]"
		}
		fmt.Fprintf(&b, "%-14s |%-*s| %d..%d%s\n",
			span.Name, width, bar, span.Start, span.Start+span.Dur, chips)
	}
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
