package advisor

import (
	"strings"
	"testing"

	"chop/internal/bad"
	"chop/internal/chip"
	"chop/internal/core"
	"chop/internal/dfg"
	"chop/internal/lib"
	"chop/internal/mem"
	"chop/internal/stats"
)

func newSession(t *testing.T, n int) *Session {
	t.Helper()
	g := dfg.ARLatticeFilter(16)
	p := &core.Partitioning{
		Graph:    g,
		Parts:    dfg.LevelPartitions(g, n),
		PartChip: seq(n),
		Chips:    chip.NewUniformSet(n, chip.MOSISPackages()[1], 4),
	}
	cfg := core.Config{
		Lib:    lib.Table1Library(),
		Style:  bad.Style{MultiCycle: true},
		Clocks: bad.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: core.Constraints{
			Perf:  stats.Constraint{Bound: 20000, MinProb: 1},
			Delay: stats.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}
	s, err := New(p, cfg, core.Iterative)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestNewRejectsInvalid(t *testing.T) {
	g := dfg.ARLatticeFilter(16)
	p := &core.Partitioning{Graph: g} // no partitions
	if _, err := New(p, core.Config{}, core.Iterative); err == nil {
		t.Fatal("invalid partitioning accepted")
	}
}

func TestMoveOp(t *testing.T) {
	s := newSession(t, 2)
	// z1 sits at the boundary (level 2); moving it to partition 2 is legal.
	if err := s.MoveOp("z1", 1); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range s.P.Parts[1] {
		if s.P.Graph.Nodes[id].Name == "z1" {
			found = true
		}
	}
	if !found {
		t.Fatal("z1 not in partition 2 after move")
	}
	if err := s.P.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveOpRejectsMutualDependency(t *testing.T) {
	s := newSession(t, 2)
	// Moving a rank-1 multiplier (b1_m1, level 0) into partition 2 makes
	// data flow 2 -> ... no; its consumers are in partition 1, so flow goes
	// 2 -> 1 while 1 -> 2 exists: mutual dependency.
	err := s.MoveOp("b1_m1", 1)
	if err == nil || !strings.Contains(err.Error(), "mutual") {
		t.Fatalf("cyclic move accepted: %v", err)
	}
}

func TestMoveOpErrors(t *testing.T) {
	s := newSession(t, 2)
	if err := s.MoveOp("ghost", 1); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := s.MoveOp("z1", 5); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := s.MoveOp("z1", 0); err == nil {
		t.Fatal("no-op move accepted")
	}
}

func TestMovePartitionAndAddChip(t *testing.T) {
	s := newSession(t, 2)
	if err := s.AddChip(chip.MOSISPackages()[0], 4); err != nil {
		t.Fatal(err)
	}
	if len(s.P.Chips.Chips) != 3 {
		t.Fatal("chip not added")
	}
	if err := s.MovePartition(1, 2); err != nil {
		t.Fatal(err)
	}
	if s.P.PartChip[1] != 2 {
		t.Fatal("partition not moved")
	}
	if err := s.MovePartition(5, 0); err == nil {
		t.Fatal("bad partition accepted")
	}
	if err := s.MovePartition(0, 9); err == nil {
		t.Fatal("bad chip accepted")
	}
}

func TestMoveMemory(t *testing.T) {
	s := newSession(t, 2)
	s.P.Mem = mem.System{
		Blocks: []mem.Block{{Name: "MA", Words: 64, Width: 16, Ports: 1, AccessTime: 100, Area: 4000}},
		Assign: mem.Assignment{"MA": 0},
	}
	if err := s.MoveMemory("MA", 1); err != nil {
		t.Fatal(err)
	}
	if s.P.Mem.Assign["MA"] != 1 {
		t.Fatal("memory not moved")
	}
	if err := s.MoveMemory("MA", -1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.P.Mem.Assign["MA"]; ok {
		t.Fatal("memory not detached")
	}
	if err := s.MoveMemory("MB", 0); err == nil {
		t.Fatal("unknown block accepted")
	}
}

func TestSplitAndMerge(t *testing.T) {
	s := newSession(t, 2)
	if err := s.SplitPartition(0); err != nil {
		t.Fatal(err)
	}
	if s.P.NumParts() != 3 {
		t.Fatalf("parts = %d after split", s.P.NumParts())
	}
	if err := s.P.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.MergePartitions(0, 2); err != nil {
		t.Fatal(err)
	}
	if s.P.NumParts() != 2 {
		t.Fatalf("parts = %d after merge", s.P.NumParts())
	}
	if err := s.P.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.MergePartitions(0, 0); err == nil {
		t.Fatal("self merge accepted")
	}
}

func TestCheckAndReport(t *testing.T) {
	s := newSession(t, 2)
	if !strings.Contains(s.Report(), "not checked yet") {
		t.Fatal("fresh session should report unchecked")
	}
	res, preds, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 || res.Trials == 0 {
		t.Fatalf("check: %d preds, %d trials", len(preds), res.Trials)
	}
	rep := s.Report()
	if !strings.Contains(rep, "interval=") && !strings.Contains(rep, "INFEASIBLE") {
		t.Fatalf("report lacks outcome: %s", rep)
	}
}

func TestConstraintSettersInvalidateCheck(t *testing.T) {
	s := newSession(t, 2)
	if _, _, err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if s.Last == nil {
		t.Fatal("check not cached")
	}
	s.SetPerf(10000, 1)
	if s.Last != nil {
		t.Fatal("constraint change must invalidate the cached check")
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	s := newSession(t, 3)
	base, _, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	next, res, err := Improve(s.P, s.Cfg, s.H, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatalf("improved partitioning invalid: %v", err)
	}
	if better(base, res) {
		t.Fatalf("Improve worsened the design: base %+v vs %+v",
			bestOf(base), bestOf(res))
	}
}

func bestOf(r core.SearchResult) any {
	if len(r.Best) == 0 {
		return "infeasible"
	}
	return r.Best[0].IIMain
}

func TestExecScript(t *testing.T) {
	s := newSession(t, 2)
	script := []struct {
		cmd    string
		expect string
	}{
		{"help", "commands:"},
		{"report", "2 partitions"},
		{"check", ""},
		{"chip add 84", "chip 3"},
		{"split 1", "3 partitions"},
		{"part 3 3", "chip 3"},
		{"perf 15000", "perf constraint"},
		{"check", ""},
		{"report", "3 partitions"},
	}
	for _, step := range script {
		out, err := s.Exec(step.cmd)
		if err != nil {
			t.Fatalf("%q: %v", step.cmd, err)
		}
		if step.expect != "" && !strings.Contains(out, step.expect) {
			t.Fatalf("%q: output %q missing %q", step.cmd, out, step.expect)
		}
	}
}

func TestExecErrors(t *testing.T) {
	s := newSession(t, 2)
	for _, cmd := range []string{
		"bogus", "move", "move ghost 1", "part x 1", "chip add 99",
		"merge 1", "perf", "chip frob",
	} {
		if _, err := s.Exec(cmd); err == nil {
			t.Errorf("%q accepted", cmd)
		}
	}
	if out, err := s.Exec(""); err != nil || out != "" {
		t.Fatal("empty line must be a no-op")
	}
}

func TestExecImprove(t *testing.T) {
	s := newSession(t, 3)
	out, err := s.Exec("improve 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "improved") && !strings.Contains(out, "no feasible") {
		t.Fatalf("improve output: %q", out)
	}
	if err := s.P.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImproveMemoryFindsBetterPlacement(t *testing.T) {
	// A memory block parked on the wrong chip: the improver should find a
	// placement at least as good.
	g := dfg.New("membeh")
	in := g.AddNode("in", dfg.OpInput, 16)
	rd := g.AddMemNode("rd", dfg.OpMemRd, 16, "MA")
	m := g.AddNode("m", dfg.OpMul, 16)
	g.MustConnect(in, m)
	g.MustConnect(rd, m)
	a := g.AddNode("a", dfg.OpAdd, 16)
	g.MustConnect(m, a)
	o := g.AddNode("o", dfg.OpOutput, 16)
	g.MustConnect(a, o)
	p := &core.Partitioning{
		Graph:    g,
		Parts:    [][]int{{m, rd}, {a}},
		PartChip: []int{0, 1},
		Chips:    chip.NewUniformSet(2, chip.MOSISPackages()[0], 4),
		Mem: mem.System{
			Blocks: []mem.Block{{Name: "MA", Words: 128, Width: 16, Ports: 1,
				AccessTime: 100, Area: 9000, ControlPins: 2}},
			Assign: mem.Assignment{"MA": 1}, // away from its reader
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := newSession(t, 2).Cfg
	base, _, err := core.Run(p, cfg, core.Iterative)
	if err != nil {
		t.Fatal(err)
	}
	next, res, err := ImproveMemory(p, cfg, core.Iterative)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	if better(base, res) {
		t.Fatalf("ImproveMemory worsened the design")
	}
}

func TestExecImproveMem(t *testing.T) {
	s := newSession(t, 2)
	s.P.Mem = mem.System{
		Blocks: []mem.Block{{Name: "MA", Words: 64, Width: 16, Ports: 1,
			AccessTime: 100, Area: 4000, ControlPins: 2}},
		Assign: mem.Assignment{"MA": 0},
	}
	out, err := s.Exec("improve-mem")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "memory placement") && !strings.Contains(out, "no feasible") {
		t.Fatalf("improve-mem output: %q", out)
	}
}

func TestExecMemAndChipPkg(t *testing.T) {
	s := newSession(t, 2)
	s.P.Mem = mem.System{
		Blocks: []mem.Block{{Name: "MA", Words: 64, Width: 16, Ports: 1,
			AccessTime: 100, Area: 4000}},
		Assign: mem.Assignment{"MA": 0},
	}
	steps := []struct{ cmd, expect string }{
		{"mem MA 2", "reassigned"},
		{"mem MA -", "reassigned"},
		{"chip pkg 1 64", "chip 1 now MOSIS-64"},
		{"delay 25000 0.9", "delay constraint"},
		{"power 900", "power constraint"},
		{"merge 1 2", "merged"},
	}
	for _, st := range steps {
		out, err := s.Exec(st.cmd)
		if err != nil {
			t.Fatalf("%q: %v", st.cmd, err)
		}
		if !strings.Contains(out, st.expect) {
			t.Fatalf("%q: got %q", st.cmd, out)
		}
	}
	if s.P.NumParts() != 1 {
		t.Fatalf("merge failed: %d parts", s.P.NumParts())
	}
}

func TestExecMoreErrors(t *testing.T) {
	s := newSession(t, 2)
	for _, cmd := range []string{
		"mem", "mem MA", "mem NOPE 1", "chip", "chip pkg", "chip pkg 1",
		"chip pkg 9 64", "split", "split 9", "merge 1 1", "part 1",
		"delay", "power abc", "improve abc", "move z1 x",
	} {
		if _, err := s.Exec(cmd); err == nil {
			t.Errorf("%q accepted", cmd)
		}
	}
}

func TestSwapPackageValidation(t *testing.T) {
	s := newSession(t, 2)
	if err := s.SwapPackage(5, chip.MOSISPackages()[0]); err == nil {
		t.Fatal("out-of-range chip accepted")
	}
	bad := chip.Package{Name: "tiny", Width: 1, Height: 1, Pins: 200, PadArea: 10}
	if err := s.SwapPackage(0, bad); err == nil {
		t.Fatal("invalid package accepted")
	}
}

func TestAddChipValidation(t *testing.T) {
	s := newSession(t, 2)
	bad := chip.Package{Name: "tiny", Width: 1, Height: 1, Pins: 200, PadArea: 10}
	if err := s.AddChip(bad, 4); err == nil {
		t.Fatal("invalid package accepted")
	}
}

func TestSplitTooSmall(t *testing.T) {
	g := dfg.New("two")
	a := g.AddNode("a", dfg.OpAdd, 16)
	b := g.AddNode("b", dfg.OpAdd, 16)
	g.MustConnect(a, b)
	p := &core.Partitioning{
		Graph:    g,
		Parts:    [][]int{{a}, {b}},
		PartChip: []int{0, 1},
		Chips:    chip.NewUniformSet(2, chip.MOSISPackages()[1], 4),
	}
	s, err := New(p, newSession(t, 2).Cfg, core.Iterative)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SplitPartition(0); err == nil {
		t.Fatal("singleton split accepted")
	}
}
