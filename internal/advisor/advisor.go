// Package advisor implements CHOP's designer-in-the-loop role (paper
// sections 2.1, 2.7 and 4): an interactive session over a tentative
// partitioning supporting the paper's four modification groups —
//
//   - behavioral partitions: operation migration, partition splits/merges,
//   - memory blocks: reassignment between chips,
//   - target chip set: adding/replacing packages, moving partitions,
//   - constraints: performance, delay and power bounds,
//
// with immediate feasibility feedback after every change ("the designer can
// easily check the effects of system-level decisions in real-time"). An
// automatic improvement loop (Improve) hill-climbs over operation
// migrations, automating the manual modification step.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"chop/internal/bad"
	"chop/internal/chip"
	"chop/internal/core"
)

// Session is one interactive partitioning session.
type Session struct {
	P   *core.Partitioning
	Cfg core.Config
	H   core.Heuristic
	// Last holds the most recent Check result (nil before the first check).
	Last *core.SearchResult
}

// New starts a session; the partitioning must validate.
func New(p *core.Partitioning, cfg core.Config, h core.Heuristic) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Session{P: p, Cfg: cfg, H: h}, nil
}

func (s *Session) nodeByName(name string) (int, error) {
	for _, n := range s.P.Graph.Nodes {
		if n.Name == name {
			return n.ID, nil
		}
	}
	return 0, fmt.Errorf("advisor: no node named %q", name)
}

// MoveOp migrates one operation to another partition (paper 2.7,
// "operation migrations from partition to partition"). The move is rejected
// if it would create a mutual dependency or empty a partition.
func (s *Session) MoveOp(name string, toPart int) error {
	id, err := s.nodeByName(name)
	if err != nil {
		return err
	}
	if toPart < 0 || toPart >= s.P.NumParts() {
		return fmt.Errorf("advisor: partition %d out of range", toPart+1)
	}
	// Build the tentative partitioning and validate it wholesale.
	next := clonePartitioning(s.P)
	found := false
	for pi, set := range next.Parts {
		for i, nid := range set {
			if nid == id {
				if pi == toPart {
					return fmt.Errorf("advisor: %q is already in partition %d", name, toPart+1)
				}
				next.Parts[pi] = append(set[:i:i], set[i+1:]...)
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return fmt.Errorf("advisor: node %q is not in any partition", name)
	}
	next.Parts[toPart] = append(next.Parts[toPart], id)
	if err := next.Validate(); err != nil {
		return fmt.Errorf("advisor: move rejected: %w", err)
	}
	*s.P = *next
	s.Last = nil
	return nil
}

// MovePartition reassigns a partition to another chip (paper 2.7,
// "migration of partitions from chip to chip").
func (s *Session) MovePartition(part, chipIdx int) error {
	if part < 0 || part >= s.P.NumParts() {
		return fmt.Errorf("advisor: partition %d out of range", part+1)
	}
	if chipIdx < 0 || chipIdx >= len(s.P.Chips.Chips) {
		return fmt.Errorf("advisor: chip %d out of range", chipIdx+1)
	}
	s.P.PartChip[part] = chipIdx
	s.Last = nil
	return nil
}

// MoveMemory reassigns a memory block to a chip (paper 2.7, "Memory
// blocks"). chipIdx -1 detaches the block (off-the-shelf part outside the
// chip set).
func (s *Session) MoveMemory(block string, chipIdx int) error {
	if _, ok := s.P.Mem.Block(block); !ok {
		return fmt.Errorf("advisor: no memory block %q", block)
	}
	if chipIdx == -1 {
		delete(s.P.Mem.Assign, block)
		s.Last = nil
		return nil
	}
	if chipIdx < 0 || chipIdx >= len(s.P.Chips.Chips) {
		return fmt.Errorf("advisor: chip %d out of range", chipIdx+1)
	}
	if s.P.Mem.Assign == nil {
		s.P.Mem.Assign = map[string]int{}
	}
	s.P.Mem.Assign[block] = chipIdx
	s.Last = nil
	return nil
}

// AddChip grows the target chip set (paper 2.7, "Target chip set").
func (s *Session) AddChip(pkg chip.Package, reserved int) error {
	c := chip.Chip{
		Name:         fmt.Sprintf("chip%d", len(s.P.Chips.Chips)+1),
		Pkg:          pkg,
		ReservedPins: reserved,
	}
	if err := c.Validate(); err != nil {
		return err
	}
	s.P.Chips.Chips = append(s.P.Chips.Chips, c)
	s.Last = nil
	return nil
}

// SwapPackage replaces the package of one chip.
func (s *Session) SwapPackage(chipIdx int, pkg chip.Package) error {
	if chipIdx < 0 || chipIdx >= len(s.P.Chips.Chips) {
		return fmt.Errorf("advisor: chip %d out of range", chipIdx+1)
	}
	next := s.P.Chips.Chips[chipIdx]
	next.Pkg = pkg
	if err := next.Validate(); err != nil {
		return err
	}
	s.P.Chips.Chips[chipIdx] = next
	s.Last = nil
	return nil
}

// SetPerf / SetDelay / SetPower adjust the constraints (paper 2.7,
// "Constraints").
func (s *Session) SetPerf(boundNS, minProb float64) {
	s.Cfg.Constraints.Perf.Bound = boundNS
	s.Cfg.Constraints.Perf.MinProb = minProb
	s.Last = nil
}

// SetDelay adjusts the system-delay constraint.
func (s *Session) SetDelay(boundNS, minProb float64) {
	s.Cfg.Constraints.Delay.Bound = boundNS
	s.Cfg.Constraints.Delay.MinProb = minProb
	s.Last = nil
}

// SetPower adjusts the power constraint (extension).
func (s *Session) SetPower(boundMW, minProb float64) {
	s.Cfg.Constraints.Power.Bound = boundMW
	s.Cfg.Constraints.Power.MinProb = minProb
	s.Last = nil
}

// SplitPartition splits a partition into two level-ordered halves; the new
// partition lands on the same chip (move it afterwards if desired). This is
// the paper's "decrease the size of partitions (by increasing the number of
// partitions) to make use of the unused space left on chips".
func (s *Session) SplitPartition(part int) error {
	if part < 0 || part >= s.P.NumParts() {
		return fmt.Errorf("advisor: partition %d out of range", part+1)
	}
	set := s.P.Parts[part]
	if len(set) < 2 {
		return fmt.Errorf("advisor: partition %d is too small to split", part+1)
	}
	lv, err := s.P.Graph.Levels()
	if err != nil {
		return err
	}
	sorted := append([]int(nil), set...)
	sort.Slice(sorted, func(i, j int) bool {
		if lv[sorted[i]] != lv[sorted[j]] {
			return lv[sorted[i]] < lv[sorted[j]]
		}
		return sorted[i] < sorted[j]
	})
	mid := len(sorted) / 2
	next := clonePartitioning(s.P)
	next.Parts[part] = sorted[:mid]
	next.Parts = append(next.Parts, sorted[mid:])
	next.PartChip = append(next.PartChip, next.PartChip[part])
	if err := next.Validate(); err != nil {
		return fmt.Errorf("advisor: split rejected: %w", err)
	}
	*s.P = *next
	s.Last = nil
	return nil
}

// MergePartitions merges partition b into a (both indices 0-based).
func (s *Session) MergePartitions(a, b int) error {
	n := s.P.NumParts()
	if a < 0 || a >= n || b < 0 || b >= n || a == b {
		return fmt.Errorf("advisor: bad partition pair %d, %d", a+1, b+1)
	}
	next := clonePartitioning(s.P)
	next.Parts[a] = append(next.Parts[a], next.Parts[b]...)
	next.Parts = append(next.Parts[:b], next.Parts[b+1:]...)
	next.PartChip = append(next.PartChip[:b], next.PartChip[b+1:]...)
	if err := next.Validate(); err != nil {
		return fmt.Errorf("advisor: merge rejected: %w", err)
	}
	*s.P = *next
	s.Last = nil
	return nil
}

// Check runs CHOP on the current state and caches the result.
func (s *Session) Check() (core.SearchResult, []bad.Result, error) {
	res, preds, err := core.Run(s.P, s.Cfg, s.H)
	if err != nil {
		return res, preds, err
	}
	s.Last = &res
	return res, preds, nil
}

// Report summarizes the session state and the last check.
func (s *Session) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s: %d partitions on %d chips\n",
		s.P.Graph.Name, s.P.NumParts(), len(s.P.Chips.Chips))
	for pi, set := range s.P.Parts {
		fmt.Fprintf(&b, "  P%d on %s: %d ops\n",
			pi+1, s.P.Chips.Chips[s.P.PartChip[pi]].Name, len(set))
	}
	cons := s.Cfg.Constraints
	fmt.Fprintf(&b, "constraints: perf<=%.0fns delay<=%.0fns", cons.Perf.Bound, cons.Delay.Bound)
	if cons.Power.Bound > 0 {
		fmt.Fprintf(&b, " power<=%.0fmW", cons.Power.Bound)
	}
	b.WriteByte('\n')
	if s.Last == nil {
		b.WriteString("not checked yet (run check)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "last check (%s): %d trials, %d feasible\n",
		s.H, s.Last.Trials, s.Last.FeasibleTrials)
	if len(s.Last.Best) == 0 {
		b.WriteString("  INFEASIBLE\n")
	}
	for _, g := range s.Last.Best {
		fmt.Fprintf(&b, "  interval=%d delay=%d clock=%.0fns\n", g.IIMain, g.DelayMain, g.Clock.ML)
	}
	return b.String()
}

func clonePartitioning(p *core.Partitioning) *core.Partitioning {
	next := &core.Partitioning{
		Graph:    p.Graph,
		Parts:    make([][]int, len(p.Parts)),
		PartChip: append([]int(nil), p.PartChip...),
		Chips:    chip.Set{Chips: append([]chip.Chip(nil), p.Chips.Chips...)},
		Mem:      p.Mem,
	}
	for i, set := range p.Parts {
		next.Parts[i] = append([]int(nil), set...)
	}
	if p.Mem.Assign != nil {
		next.Mem.Assign = make(map[string]int, len(p.Mem.Assign))
		for k, v := range p.Mem.Assign {
			next.Mem.Assign[k] = v
		}
	}
	return next
}

// score orders search outcomes: feasible beats infeasible; among feasible,
// lower best II wins, then lower delay.
func score(res core.SearchResult) (feasible bool, ii, delay int) {
	if len(res.Best) == 0 {
		return false, 1 << 30, 1 << 30
	}
	return true, res.Best[0].IIMain, res.Best[0].DelayMain
}

func better(a, b core.SearchResult) bool {
	af, aii, ad := score(a)
	bf, bii, bd := score(b)
	if af != bf {
		return af
	}
	if aii != bii {
		return aii < bii
	}
	return ad < bd
}

// Improve hill-climbs over single-operation migrations between partitions,
// automating the paper-2.7 manual modification loop: in each round it
// evaluates every legal move of a boundary operation to an adjacent
// partition and keeps the best strictly-improving one, stopping after
// maxRounds or at a local optimum. It returns the improved partitioning and
// its final search result.
func Improve(p *core.Partitioning, cfg core.Config, h core.Heuristic, maxRounds int) (*core.Partitioning, core.SearchResult, error) {
	cur := clonePartitioning(p)
	if err := cur.Validate(); err != nil {
		return nil, core.SearchResult{}, err
	}
	best, _, err := core.Run(cur, cfg, h)
	if err != nil {
		return nil, core.SearchResult{}, err
	}
	if maxRounds <= 0 {
		maxRounds = 8
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		for _, mv := range boundaryMoves(cur) {
			cand := clonePartitioning(cur)
			applyMove(cand, mv)
			if cand.Validate() != nil {
				continue
			}
			res, _, err := core.Run(cand, cfg, h)
			if err != nil {
				continue
			}
			if better(res, best) {
				cur, best = cand, res
				improved = true
				break // greedy: take the first improving move, rescan
			}
		}
		if !improved {
			break
		}
	}
	return cur, best, nil
}

type move struct{ node, from, to int }

// boundaryMoves lists candidate migrations: operations with an edge
// crossing into another partition may move to that partition.
func boundaryMoves(p *core.Partitioning) []move {
	assign := p.Assignment()
	seen := map[move]bool{}
	var out []move
	add := func(m move) {
		if !seen[m] && len(p.Parts[m.from]) > 1 {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, e := range p.Graph.Edges {
		pf, okF := assign[e.From]
		pt, okT := assign[e.To]
		if !okF || !okT || pf == pt {
			continue
		}
		add(move{e.From, pf, pt})
		add(move{e.To, pt, pf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].to < out[j].to
	})
	return out
}

func applyMove(p *core.Partitioning, m move) {
	set := p.Parts[m.from]
	for i, id := range set {
		if id == m.node {
			p.Parts[m.from] = append(set[:i:i], set[i+1:]...)
			break
		}
	}
	p.Parts[m.to] = append(p.Parts[m.to], m.node)
}

// Exec interprets one advisor command line and returns its output. It is
// the scriptable core of `chop advise`. Commands:
//
//	move <op> <partition>      migrate an operation
//	part <partition> <chip>    move a partition to a chip
//	mem <block> <chip|->       reassign a memory block (- detaches it)
//	chip add <64|84>           add a MOSIS package chip
//	chip pkg <chip> <64|84>    swap a chip's package
//	split <partition>          split a partition in two
//	merge <a> <b>              merge partition b into a
//	perf <ns> [prob]           set the performance constraint
//	delay <ns> [prob]          set the delay constraint
//	power <mW> [prob]          set the power constraint
//	check                      run CHOP
//	improve [rounds]           automatic op-migration improvement
//	improve-mem                automatic memory-block placement
//	report                     show session state
//	help                       this text
func (s *Session) Exec(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	argInt := func(i int) (int, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("advisor: %s needs more arguments", fields[0])
		}
		var v int
		if _, err := fmt.Sscanf(fields[i], "%d", &v); err != nil {
			return 0, fmt.Errorf("advisor: bad number %q", fields[i])
		}
		return v, nil
	}
	argFloat := func(i int, def float64) (float64, error) {
		if i >= len(fields) {
			return def, nil
		}
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return 0, fmt.Errorf("advisor: bad number %q", fields[i])
		}
		return v, nil
	}
	pkgByPins := func(s string) (chip.Package, error) {
		for _, p := range chip.MOSISPackages() {
			if fmt.Sprint(p.Pins) == s {
				return p, nil
			}
		}
		return chip.Package{}, fmt.Errorf("advisor: no MOSIS package with %s pins", s)
	}
	switch fields[0] {
	case "move":
		if len(fields) < 3 {
			return "", fmt.Errorf("advisor: move <op> <partition>")
		}
		to, err := argInt(2)
		if err != nil {
			return "", err
		}
		if err := s.MoveOp(fields[1], to-1); err != nil {
			return "", err
		}
		return fmt.Sprintf("moved %s to partition %d", fields[1], to), nil
	case "part":
		pi, err := argInt(1)
		if err != nil {
			return "", err
		}
		ci, err := argInt(2)
		if err != nil {
			return "", err
		}
		if err := s.MovePartition(pi-1, ci-1); err != nil {
			return "", err
		}
		return fmt.Sprintf("partition %d now on chip %d", pi, ci), nil
	case "mem":
		if len(fields) < 3 {
			return "", fmt.Errorf("advisor: mem <block> <chip|->")
		}
		ci := -1
		if fields[2] != "-" {
			v, err := argInt(2)
			if err != nil {
				return "", err
			}
			ci = v - 1
		}
		if err := s.MoveMemory(fields[1], ci); err != nil {
			return "", err
		}
		return fmt.Sprintf("memory %s reassigned", fields[1]), nil
	case "chip":
		if len(fields) < 2 {
			return "", fmt.Errorf("advisor: chip add <pins> | chip pkg <chip> <pins>")
		}
		switch fields[1] {
		case "add":
			if len(fields) < 3 {
				return "", fmt.Errorf("advisor: chip add <pins>")
			}
			pkg, err := pkgByPins(fields[2])
			if err != nil {
				return "", err
			}
			if err := s.AddChip(pkg, 4); err != nil {
				return "", err
			}
			return fmt.Sprintf("added %s as chip %d", pkg.Name, len(s.P.Chips.Chips)), nil
		case "pkg":
			ci, err := argInt(2)
			if err != nil {
				return "", err
			}
			if len(fields) < 4 {
				return "", fmt.Errorf("advisor: chip pkg <chip> <pins>")
			}
			pkg, err := pkgByPins(fields[3])
			if err != nil {
				return "", err
			}
			if err := s.SwapPackage(ci-1, pkg); err != nil {
				return "", err
			}
			return fmt.Sprintf("chip %d now %s", ci, pkg.Name), nil
		default:
			return "", fmt.Errorf("advisor: unknown chip subcommand %q", fields[1])
		}
	case "split":
		pi, err := argInt(1)
		if err != nil {
			return "", err
		}
		if err := s.SplitPartition(pi - 1); err != nil {
			return "", err
		}
		return fmt.Sprintf("partition %d split; now %d partitions", pi, s.P.NumParts()), nil
	case "merge":
		a, err := argInt(1)
		if err != nil {
			return "", err
		}
		b, err := argInt(2)
		if err != nil {
			return "", err
		}
		if err := s.MergePartitions(a-1, b-1); err != nil {
			return "", err
		}
		return fmt.Sprintf("merged partition %d into %d", b, a), nil
	case "perf", "delay", "power":
		bound, err := argFloat(1, -1)
		if err != nil || bound < 0 {
			return "", fmt.Errorf("advisor: %s <bound> [prob]", fields[0])
		}
		def := 1.0
		if fields[0] == "delay" {
			def = 0.8
		}
		prob, err := argFloat(2, def)
		if err != nil {
			return "", err
		}
		switch fields[0] {
		case "perf":
			s.SetPerf(bound, prob)
		case "delay":
			s.SetDelay(bound, prob)
		case "power":
			s.SetPower(bound, prob)
		}
		return fmt.Sprintf("%s constraint set to %.0f (prob %.2f)", fields[0], bound, prob), nil
	case "check":
		res, _, err := s.Check()
		if err != nil {
			return "", err
		}
		if len(res.Best) == 0 {
			return fmt.Sprintf("infeasible (%d trials)", res.Trials), nil
		}
		b := res.Best[0]
		return fmt.Sprintf("feasible: interval=%d delay=%d clock=%.0fns (%d trials)",
			b.IIMain, b.DelayMain, b.Clock.ML, res.Trials), nil
	case "improve-mem":
		next, res, err := ImproveMemory(s.P, s.Cfg, s.H)
		if err != nil {
			return "", err
		}
		*s.P = *next
		s.Last = &res
		if len(res.Best) == 0 {
			return "no feasible design found by memory improvement", nil
		}
		return fmt.Sprintf("memory placement improved: interval=%d delay=%d",
			res.Best[0].IIMain, res.Best[0].DelayMain), nil
	case "improve":
		rounds := 8
		if len(fields) > 1 {
			v, err := argInt(1)
			if err != nil {
				return "", err
			}
			rounds = v
		}
		next, res, err := Improve(s.P, s.Cfg, s.H, rounds)
		if err != nil {
			return "", err
		}
		*s.P = *next
		s.Last = &res
		if len(res.Best) == 0 {
			return "no feasible design found by improvement", nil
		}
		return fmt.Sprintf("improved: interval=%d delay=%d",
			res.Best[0].IIMain, res.Best[0].DelayMain), nil
	case "report":
		return s.Report(), nil
	case "help":
		return helpText, nil
	default:
		return "", fmt.Errorf("advisor: unknown command %q (try help)", fields[0])
	}
}

const helpText = `commands:
  move <op> <partition>      migrate an operation
  part <partition> <chip>    move a partition to a chip
  mem <block> <chip|->       reassign a memory block (- detaches it)
  chip add <64|84>           add a MOSIS package chip
  chip pkg <chip> <64|84>    swap a chip's package
  split <partition>          split a partition in two
  merge <a> <b>              merge partition b into a
  perf <ns> [prob]           set the performance constraint
  delay <ns> [prob]          set the delay constraint
  power <mW> [prob]          set the power constraint
  check                      run CHOP on the current state
  improve [rounds]           automatic op-migration improvement
  improve-mem                automatic memory-block placement
  report                     show session state`

// ImproveMemory automates the paper's interleaved memory/behavior
// partitioning step ("a step we intend to automate in the future", section
// 2.2): for every memory block, it tries each chip assignment (and
// detachment, for off-the-shelf parts) and keeps the placement whose CHOP
// result is best. Behavior partitions stay fixed; combine with Improve for
// the full interleaving.
func ImproveMemory(p *core.Partitioning, cfg core.Config, h core.Heuristic) (*core.Partitioning, core.SearchResult, error) {
	cur := clonePartitioning(p)
	if err := cur.Validate(); err != nil {
		return nil, core.SearchResult{}, err
	}
	best, _, err := core.Run(cur, cfg, h)
	if err != nil {
		return nil, core.SearchResult{}, err
	}
	for _, blk := range cur.Mem.Blocks {
		candidates := make([]int, 0, len(cur.Chips.Chips)+1)
		for ci := range cur.Chips.Chips {
			candidates = append(candidates, ci)
		}
		if blk.OffChip {
			candidates = append(candidates, -1) // outside the chip set
		}
		for _, ci := range candidates {
			cand := clonePartitioning(cur)
			if cand.Mem.Assign == nil {
				cand.Mem.Assign = map[string]int{}
			}
			if ci == -1 {
				delete(cand.Mem.Assign, blk.Name)
			} else {
				cand.Mem.Assign[blk.Name] = ci
			}
			if cand.Validate() != nil {
				continue
			}
			res, _, err := core.Run(cand, cfg, h)
			if err != nil {
				continue
			}
			if better(res, best) {
				cur, best = cand, res
			}
		}
	}
	return cur, best, nil
}
