#!/usr/bin/env bash
# loadgen-smoke: SLO load-test smoke against a real admission-controlled
# chop serve process.
#
# Starts `chop serve -api-keys tenants.json`, drives it with `chop loadgen`
# at low RPS for LOADGEN_SECS seconds (submit/stream/cancel mix with SSE
# fan-out), writes loadgen.json, runs the SLO gate offline against the
# report itself (the latency and leak gates must parse and pass on an
# unregressed run), and checks that a wrong API key is rejected with
# bad-key. CI uploads loadgen.json as an artifact; gate future changes
# with `chop loadgen -compare loadgen.json`.
set -euo pipefail

DIR="${LOADGEN_DIR:-loadgen-smoke}"
ADDR="${LOADGEN_ADDR:-127.0.0.1:18090}"
SECS="${LOADGEN_SECS:-10}"
GO="${GO:-go}"

mkdir -p "$DIR"
rm -f "$DIR"/loadgen.json "$DIR"/badkey.json "$DIR"/tenants.json

echo "== building chop"
"$GO" build -o "$DIR/chop" ./cmd/chop

cat > "$DIR/tenants.json" <<'EOF'
{"tenants": [
  {"name": "ci", "key": "ci-loadgen-key", "maxRunning": 4, "maxQueued": 64,
   "ratePerSec": 50, "priority": 1},
  {"name": "batch", "key": "ci-batch-key", "maxRunning": 1, "maxQueued": 8,
   "ratePerSec": 5, "priority": 0}
]}
EOF

echo "== starting chop serve on $ADDR (admission control active)"
"$DIR/chop" serve -addr "$ADDR" -api-keys "$DIR/tenants.json" \
	-checkpoint-dir "$DIR/ckpt" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

echo "== waiting for the listener"
HOST="${ADDR%:*}" PORT="${ADDR##*:}"
for _ in $(seq 1 50); do
	if (exec 3<>"/dev/tcp/$HOST/$PORT") 2>/dev/null; then
		exec 3>&- || true
		break
	fi
	sleep 0.2
done

echo "== driving ${SECS}s of load at 10 rps"
"$DIR/chop" loadgen -addr "http://$ADDR" -api-key ci-loadgen-key \
	-rps 10 -duration "$SECS" -stream 0.5 -cancel 0.1 -subs 2 \
	-json "$DIR/loadgen.json"

echo "== gating the report (self-compare: latency + leak gates must pass)"
"$DIR/chop" loadgen -compare "$DIR/loadgen.json" "$DIR/loadgen.json"

echo "== unauthenticated submits must be rejected with bad-key"
"$DIR/chop" loadgen -addr "http://$ADDR" -api-key wrong-key \
	-rps 5 -duration 1 -json "$DIR/badkey.json"
if ! grep -q '"bad-key"' "$DIR/badkey.json"; then
	echo "FAIL: wrong API key was not rejected with bad-key" >&2
	exit 1
fi

echo "== stopping the server"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
trap - EXIT

echo "== loadgen smoke OK: report at $DIR/loadgen.json"
