#!/usr/bin/env bash
# dist-smoke: fault-tolerant distributed search across real processes.
#
# Phase 1 (chaos): a coordinator (`chop search -distributed`) farms shards
# to two `chop serve` workers, one of which stalls every job via fault
# injection and is SIGKILLed mid-search. The lease machinery must recover
# (failed lease -> shards reassigned to the survivor) and the merged
# result must be byte-identical to a serial `-workers 1` run — for both
# heuristics.
#
# Phase 2 (trace): a clean two-worker run with -trace everywhere, stitched
# by `chop trace -fail-on-orphans` (coordinator Lease spans must parent
# the workers' HTTP/job spans) and exported as perfetto.json for CI.
set -euo pipefail

DIR="${DIST_SMOKE_DIR:-dist-smoke}"
PORT1="${DIST_SMOKE_PORT1:-18411}"
PORT2="${DIST_SMOKE_PORT2:-18412}"
GO="${GO:-go}"

W1="http://127.0.0.1:$PORT1"
W2="http://127.0.0.1:$PORT2"

mkdir -p "$DIR"
rm -f "$DIR"/*.json "$DIR"/*.jsonl "$DIR"/*.txt "$DIR"/*.log

echo "== building chop"
"$GO" build -o "$DIR/chop" ./cmd/chop

cleanup() {
	kill -9 "${W1_PID:-}" "${W2_PID:-}" 2>/dev/null || true
}
trap cleanup EXIT

wait_port() { # host port
	for _ in $(seq 1 100); do
		if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then
			exec 3>&- 3<&-
			return 0
		fi
		sleep 0.1
	done
	echo "FAIL: nothing listening on $1:$2" >&2
	return 1
}

start_worker() { # port logfile extra-env...
	local port="$1" log="$2"
	shift 2
	env "$@" "$DIR/chop" serve -addr "127.0.0.1:$port" -log-level warn >"$log" 2>&1 &
	echo $!
}

echo "== writing specs (both heuristics)"
"$DIR/chop" spec > "$DIR/spec_I.json"
sed 's/"heuristic": "I"/"heuristic": "E"/' "$DIR/spec_I.json" > "$DIR/spec_E.json"
grep -q '"heuristic": "E"' "$DIR/spec_E.json"

for H in I E; do
	SPEC="$DIR/spec_$H.json"

	echo "== [$H] serial baseline"
	"$DIR/chop" search -f "$SPEC" -workers 1 -json \
		> "$DIR/serial_$H.json" 2>/dev/null

	echo "== [$H] starting fleet: healthy worker + stalled victim"
	W1_PID=$(start_worker "$PORT1" "$DIR/w1_$H.log")
	# Every job on the victim stalls far longer than the search, so its
	# leased shards can only complete through failure recovery.
	W2_PID=$(start_worker "$PORT2" "$DIR/w2_$H.log" CHOP_FAULT_INJECT="serve.job=stall:1:60s")
	wait_port 127.0.0.1 "$PORT1"
	wait_port 127.0.0.1 "$PORT2"

	echo "== [$H] distributed search; SIGKILL the stalled worker mid-search"
	( sleep 0.4; kill -9 "$W2_PID" 2>/dev/null || true ) &
	KILLER=$!
	"$DIR/chop" search -f "$SPEC" -distributed \
		-workers-url "$W1,$W2" \
		-lease 500ms -poll 50ms -json \
		> "$DIR/dist_$H.json" 2> "$DIR/dist_$H.log"
	wait "$KILLER" 2>/dev/null || true
	kill -9 "$W1_PID" 2>/dev/null || true
	wait "$W1_PID" 2>/dev/null || true

	echo "== [$H] asserting recovery and byte-identity"
	reassigned=$(grep -o 'reassigned=[0-9]*' "$DIR/dist_$H.log" | head -1 | cut -d= -f2)
	if [ "${reassigned:-0}" -lt 1 ]; then
		echo "FAIL: [$H] no shards were reassigned after the worker kill" >&2
		cat "$DIR/dist_$H.log" >&2
		exit 1
	fi
	if ! cmp -s "$DIR/serial_$H.json" "$DIR/dist_$H.json"; then
		echo "FAIL: [$H] distributed result diverged from serial" >&2
		diff "$DIR/serial_$H.json" "$DIR/dist_$H.json" | head -20 >&2
		exit 1
	fi
	echo "   [$H] OK: reassigned=$reassigned shards, result byte-identical to serial"
done

echo "== clean traced run for cross-process stitching"
# Workers record their side of every request; the coordinator stamps each
# lease submission with its span's traceparent so the trees join.
"$DIR/chop" serve -addr "127.0.0.1:$PORT1" -trace "$DIR/w1.jsonl" -log-level warn >"$DIR/w1_trace.log" 2>&1 &
W1_PID=$!
"$DIR/chop" serve -addr "127.0.0.1:$PORT2" -trace "$DIR/w2.jsonl" -log-level warn >"$DIR/w2_trace.log" 2>&1 &
W2_PID=$!
wait_port 127.0.0.1 "$PORT1"
wait_port 127.0.0.1 "$PORT2"

"$DIR/chop" search -f "$DIR/spec_I.json" -distributed \
	-workers-url "$W1,$W2" \
	-trace "$DIR/coord.jsonl" -poll 50ms -json \
	> "$DIR/dist_traced.json" 2> "$DIR/dist_traced.log"

kill -TERM "$W1_PID" "$W2_PID" 2>/dev/null || true
wait "$W1_PID" 2>/dev/null || true
wait "$W2_PID" 2>/dev/null || true

cmp -s "$DIR/serial_I.json" "$DIR/dist_traced.json" || {
	echo "FAIL: traced distributed run diverged from serial" >&2
	exit 1
}

echo "== stitching coordinator + worker traces"
"$DIR/chop" trace -fail-on-orphans -out "$DIR/stitched.txt" \
	"$DIR/coord.jsonl" "$DIR/w1.jsonl" "$DIR/w2.jsonl"
for want in "DistSearch" "Lease"; do
	if ! grep -q "$want" "$DIR/stitched.txt"; then
		echo "FAIL: stitched waterfall missing span \"$want\"" >&2
		cat "$DIR/stitched.txt" >&2
		exit 1
	fi
done

echo "== exporting Perfetto JSON"
"$DIR/chop" trace -fail-on-orphans -o perfetto -out "$DIR/perfetto.json" \
	"$DIR/coord.jsonl" "$DIR/w1.jsonl" "$DIR/w2.jsonl"

echo "== dist smoke OK: worker killed mid-search, results byte-identical; open $DIR/perfetto.json at https://ui.perfetto.dev"
