#!/usr/bin/env bash
# trace-smoke: distributed-tracing smoke across two real processes.
#
# Starts `chop serve -trace server.jsonl`, submits a traced run with
# `chop submit -trace-out client.jsonl -wait`, stops the server (so its
# buffered JSONL flushes), then stitches both files with `chop trace`:
# the text waterfall must contain the cross-process chain and
# -fail-on-orphans makes broken parent links fatal. Finally exports
# perfetto.json for ui.perfetto.dev (uploaded as a CI artifact).
set -euo pipefail

DIR="${TRACE_SMOKE_DIR:-trace-smoke}"
ADDR="${TRACE_SMOKE_ADDR:-127.0.0.1:18080}"
GO="${GO:-go}"

mkdir -p "$DIR"
rm -f "$DIR"/server.jsonl "$DIR"/client.jsonl "$DIR"/perfetto.json "$DIR"/stitched.txt

echo "== building chop"
"$GO" build -o "$DIR/chop" ./cmd/chop

echo "== starting chop serve on $ADDR"
"$DIR/chop" serve -addr "$ADDR" -trace "$DIR/server.jsonl" -log-level debug &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

echo "== submitting a traced run"
"$DIR/chop" submit -addr "http://$ADDR" -kind eval \
	-trace-out "$DIR/client.jsonl" -retry-for 15s -wait

echo "== stopping the server (flushes its trace file)"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
trap - EXIT

echo "== stitching both processes' traces"
"$DIR/chop" trace -fail-on-orphans -out "$DIR/stitched.txt" \
	"$DIR/client.jsonl" "$DIR/server.jsonl"
cat "$DIR/stitched.txt"

for want in "submit" "http submit" "Search"; do
	if ! grep -q "$want" "$DIR/stitched.txt"; then
		echo "FAIL: stitched waterfall missing span \"$want\"" >&2
		exit 1
	fi
done

echo "== exporting Perfetto JSON"
"$DIR/chop" trace -fail-on-orphans -o perfetto -out "$DIR/perfetto.json" \
	"$DIR/client.jsonl" "$DIR/server.jsonl"

echo "== trace smoke OK: open $DIR/perfetto.json at https://ui.perfetto.dev"
