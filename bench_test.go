// Benchmarks regenerating every table and figure of the paper's evaluation
// (section 3), plus ablation benches for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Each table/figure bench reports the paper-comparable quantities as
// b.ReportMetric custom metrics so the bench output doubles as the
// reproduction record (see EXPERIMENTS.md).
package chop_test

import (
	"fmt"
	"testing"

	chop "chop"
	"chop/internal/experiments"
)

// benchCounts runs the Table 3/5 prediction-statistics workload.
func benchCounts(b *testing.B, expN int) {
	e := experiments.New(expN)
	var rows []experiments.CountsRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = e.PredictionCounts()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		suffix := "p" + string(rune('0'+r.Partitions))
		b.ReportMetric(float64(r.Total), "predictions_"+suffix)
		b.ReportMetric(float64(r.Feasible), "feasible_"+suffix)
	}
}

// BenchmarkTable3 regenerates paper Table 3: BAD prediction statistics for
// experiment 1 (single-cycle style) over 1/2/3 partitions.
func BenchmarkTable3(b *testing.B) { benchCounts(b, 1) }

// BenchmarkTable5 regenerates paper Table 5: the same statistics for
// experiment 2 (multi-cycle style).
func BenchmarkTable5(b *testing.B) { benchCounts(b, 2) }

// benchResults runs the Table 4/6 workload: both heuristics over the
// partition/package schedule.
func benchResults(b *testing.B, expN int) {
	e := experiments.New(expN)
	var rows []experiments.ResultRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = e.Results()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bestII, trialsE, trialsI := 1<<30, 0, 0
	for _, r := range rows {
		if r.Heuristic == "E" {
			trialsE += r.Trials
		} else {
			trialsI += r.Trials
		}
		for _, p := range r.Points {
			if p.II < bestII {
				bestII = p.II
			}
		}
	}
	b.ReportMetric(float64(bestII), "best_interval_cycles")
	b.ReportMetric(float64(trialsE), "trials_enumeration")
	b.ReportMetric(float64(trialsI), "trials_iterative")
}

// BenchmarkTable4 regenerates paper Table 4: experiment-1 partitioning
// results (heuristic, trials, feasible trials, interval, delay, clock).
func BenchmarkTable4(b *testing.B) { benchResults(b, 1) }

// BenchmarkTable6 regenerates paper Table 6: the experiment-2 results.
func BenchmarkTable6(b *testing.B) { benchResults(b, 2) }

// BenchmarkFigure7 regenerates paper Figure 7: the unpruned design space of
// experiment 1 over all three partitionings, reporting the explored point
// count and the pruned-vs-full trial counts whose ratio is the figure's
// headline.
func BenchmarkFigure7(b *testing.B) {
	e := experiments.New(1)
	var fig experiments.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err = e.Explore(1, 2, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(fig.Points)), "space_points")
	b.ReportMetric(float64(fig.Predictions), "predictions")
	b.ReportMetric(float64(fig.UniquePredictions), "unique_predictions")
	b.ReportMetric(float64(fig.FullTrials), "full_trials")
	b.ReportMetric(float64(fig.PrunedTrials), "pruned_trials")
}

// BenchmarkFigure8 regenerates paper Figure 8: the unpruned design space of
// experiment 2 restricted to the single-partition implementation (the paper
// ran out of swap beyond that).
func BenchmarkFigure8(b *testing.B) {
	e := experiments.New(2)
	var fig experiments.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err = e.Explore(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(fig.Points)), "space_points")
	b.ReportMetric(float64(fig.Predictions), "predictions")
	b.ReportMetric(float64(fig.UniquePredictions), "unique_predictions")
}

// ---- ablations --------------------------------------------------------

func exp1Config() chop.Config { return experiments.New(1).Cfg }

func arSetup(n int) *chop.Partitioning {
	return experiments.New(1).Partitioning(n, 2)
}

// BenchmarkSearch isolates the search stage over precomputed per-partition
// predictions, for both heuristics. This is the hot loop the observability
// hooks instrument; run it with Config.Trace == nil to measure the
// disabled-tracing overhead (the acceptance bar is <2% versus the
// un-instrumented baseline).
func BenchmarkSearch(b *testing.B) {
	p := arSetup(3)
	cfg := exp1Config()
	preds, err := chop.PredictPartitions(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []chop.Heuristic{chop.Enumeration, chop.Iterative} {
		b.Run(h.String(), func(b *testing.B) {
			var trials int
			for i := 0; i < b.N; i++ {
				res, err := chop.Search(p, cfg, preds, h)
				if err != nil {
					b.Fatal(err)
				}
				trials = res.Trials
			}
			b.ReportMetric(float64(trials), "trials")
		})
	}
}

// BenchmarkSearchParallel measures the sharded worker-pool search engine
// against the serial loop on the synthetic stress graph: one KeepAll
// prediction truncated to 20 designs per partition (a fixed 8000-combination
// enumeration), searched at 1, 2 and 4 workers. Results are byte-identical
// at every worker count; on a multi-core host the w4/w1 ns/op ratio is the
// engine's speedup (single-core machines show ~1x by construction).
func BenchmarkSearchParallel(b *testing.B) {
	g := chop.StressDFG(6, 20, 16)
	const parts = 3
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, parts),
		PartChip: []int{0, 1, 2},
		Chips:    chop.NewChipSet(parts, chop.MOSISPackages()[1], 4),
	}
	cfg := chop.Config{
		Lib:    chop.ExtendedLibrary(),
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 300000, MinProb: 1},
			Delay: chop.Constraint{Bound: 300000, MinProb: 0.8},
		},
		KeepAll: true,
	}
	preds, err := chop.PredictPartitions(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := range preds {
		if len(preds[i].Designs) > 20 {
			preds[i].Designs = preds[i].Designs[:20]
		}
	}
	cfg.KeepAll = false
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			wcfg := cfg
			wcfg.Workers = workers
			var trials int
			for i := 0; i < b.N; i++ {
				res, err := chop.Search(p, wcfg, preds, chop.Enumeration)
				if err != nil {
					b.Fatal(err)
				}
				trials = res.Trials
			}
			b.ReportMetric(float64(trials), "trials")
		})
	}
}

// BenchmarkAblationHeuristic compares the two heuristics head to head on
// the 3-partition setup (paper Table 4 rows 9-10: 1050 vs 9 trials).
func BenchmarkAblationHeuristic(b *testing.B) {
	for _, h := range []chop.Heuristic{chop.Enumeration, chop.Iterative} {
		b.Run(h.String(), func(b *testing.B) {
			var trials int
			for i := 0; i < b.N; i++ {
				res, _, err := chop.Run(arSetup(3), exp1Config(), h)
				if err != nil {
					b.Fatal(err)
				}
				trials = res.Trials
			}
			b.ReportMetric(float64(trials), "trials")
		})
	}
}

// BenchmarkAblationPruning measures the cost of keeping the whole design
// space (the paper's 61.4 s unpruned vs sub-second pruned contrast).
func BenchmarkAblationPruning(b *testing.B) {
	for _, keepAll := range []bool{false, true} {
		name := "pruned"
		if keepAll {
			name = "keepall"
		}
		b.Run(name, func(b *testing.B) {
			cfg := exp1Config()
			cfg.KeepAll = keepAll
			for i := 0; i < b.N; i++ {
				if _, _, err := chop.Run(arSetup(2), cfg, chop.Enumeration); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTestability measures the scan-design extension's cost
// (area/clock overhead knob from the paper's future-work list).
func BenchmarkAblationTestability(b *testing.B) {
	for _, scan := range []bool{false, true} {
		name := "off"
		if scan {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			cfg := exp1Config()
			cfg.Style.Testability = scan
			var best int
			for i := 0; i < b.N; i++ {
				res, _, err := chop.Run(arSetup(2), cfg, chop.Iterative)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Best) > 0 {
					best = res.Best[0].IIMain
				} else {
					best = -1
				}
			}
			b.ReportMetric(float64(best), "best_interval_cycles")
		})
	}
}

// BenchmarkAblationBusWidth sweeps the transfer-module bus cap, the knob
// behind the pad-area / transfer-time trade (DESIGN.md substitution note).
func BenchmarkAblationBusWidth(b *testing.B) {
	for _, pins := range []int{16, 32, 64} {
		b.Run(string(rune('0'+pins/10))+string(rune('0'+pins%10))+"pins", func(b *testing.B) {
			cfg := exp1Config()
			cfg.MaxBusPins = pins
			var delay int
			for i := 0; i < b.N; i++ {
				res, _, err := chop.Run(arSetup(2), cfg, chop.Iterative)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Best) > 0 {
					delay = res.Best[0].DelayMain
				}
			}
			b.ReportMetric(float64(delay), "best_delay_cycles")
		})
	}
}

// BenchmarkKLBaseline measures the Kernighan-Lin baseline bisection on the
// AR filter (related-work comparator).
func BenchmarkKLBaseline(b *testing.B) {
	g := chop.ARLatticeFilter(16)
	var cut int
	for i := 0; i < b.N; i++ {
		cut = chop.KLCutBits(g, chop.KLBisect(g, 10))
	}
	b.ReportMetric(float64(cut), "cut_bits")
}

// BenchmarkBADPredict measures a single BAD prediction pass (experiment-2
// settings, the heavier style).
func BenchmarkBADPredict(b *testing.B) {
	g := chop.ARLatticeFilter(16)
	e := experiments.New(2)
	cfg := chop.PredictConfig{
		Lib:     e.Cfg.Lib,
		Style:   e.Cfg.Style,
		Clocks:  e.Cfg.Clocks,
		MaxArea: chop.MOSISPackages()[1].ProjectArea(),
		Perf:    e.Cfg.Constraints.Perf,
		Delay:   e.Cfg.Constraints.Delay,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chop.Predict(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduler compares the default list-scheduling sweep
// against the force-directed variant (paper reference [9]) inside BAD.
func BenchmarkAblationScheduler(b *testing.B) {
	g := chop.ARLatticeFilter(16)
	for _, fds := range []bool{false, true} {
		name := "list"
		if fds {
			name = "fds"
		}
		b.Run(name, func(b *testing.B) {
			e := experiments.New(2)
			cfg := chop.PredictConfig{
				Lib:           e.Cfg.Lib,
				Style:         e.Cfg.Style,
				Clocks:        e.Cfg.Clocks,
				MaxArea:       chop.MOSISPackages()[1].ProjectArea(),
				Perf:          e.Cfg.Constraints.Perf,
				Delay:         e.Cfg.Constraints.Delay,
				MaxII:         40,
				ForceDirected: fds,
			}
			var cheapest float64
			for i := 0; i < b.N; i++ {
				res, err := chop.Predict(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cheapest = 0
				for _, d := range res.Designs {
					if cheapest == 0 || d.Area.ML < cheapest {
						cheapest = d.Area.ML
					}
				}
			}
			b.ReportMetric(cheapest, "cheapest_area_mil2")
		})
	}
}

// BenchmarkSynthesisAndVerify measures the full back-end: bind the fastest
// non-pipelined AR-filter design to RTL and verify it against the golden
// model, reporting the prediction-accuracy ratios (the paper's "very
// accurate" claim as numbers).
func BenchmarkSynthesisAndVerify(b *testing.B) {
	g := chop.ARLatticeFilter(16)
	e := experiments.New(2)
	cfg := chop.PredictConfig{
		Lib:     e.Cfg.Lib,
		Style:   e.Cfg.Style,
		Clocks:  e.Cfg.Clocks,
		MaxArea: chop.MOSISPackages()[1].ProjectArea(),
		Perf:    e.Cfg.Constraints.Perf,
		Delay:   e.Cfg.Constraints.Delay,
	}
	res, err := chop.Predict(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var d chop.Design
	found := false
	for _, cand := range res.Designs {
		if cand.Style == chop.NonPipelined {
			d, found = cand, true
			break
		}
	}
	if !found {
		b.Skip("no non-pipelined design")
	}
	cyc := chop.OpCyclesFor(d, true, cfg.Clocks.DatapathNS())
	vec := map[string]int64{"x1": 3, "x2": -5, "x3": 7, "x4": 11}
	var regRatio, muxRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl, err := chop.Bind(g, d, cfg.Lib, cyc)
		if err != nil {
			b.Fatal(err)
		}
		if err := chop.VerifyNetlist(g, nl, vec, nil); err != nil {
			b.Fatal(err)
		}
		regRatio = float64(nl.RegisterBits()) / float64(d.RegBits)
		muxRatio = float64(nl.Mux1Bit()) / float64(d.Mux1Bit)
	}
	b.StopTimer()
	b.ReportMetric(regRatio, "regbits_bound_over_predicted")
	b.ReportMetric(muxRatio, "mux_bound_over_predicted")
}

// BenchmarkAblationImprove measures the automatic op-migration improvement
// loop against the starting partitioning.
func BenchmarkAblationImprove(b *testing.B) {
	var before, after int
	for i := 0; i < b.N; i++ {
		p := experiments.New(2).Partitioning(3, 2)
		cfg := experiments.New(2).Cfg
		res, _, err := chop.Run(p, cfg, chop.Iterative)
		if err != nil {
			b.Fatal(err)
		}
		before = bestII(res)
		_, improved, err := chop.Improve(p, cfg, chop.Iterative, 2)
		if err != nil {
			b.Fatal(err)
		}
		after = bestII(improved)
	}
	b.ReportMetric(float64(before), "interval_before")
	b.ReportMetric(float64(after), "interval_after")
}

func bestII(r chop.SearchResult) int {
	if len(r.Best) == 0 {
		return -1
	}
	return r.Best[0].IIMain
}

// BenchmarkCosim measures the full multi-chip verification loop: CHOP
// search, per-partition RTL synthesis, streamed co-simulation of 4 samples.
func BenchmarkCosim(b *testing.B) {
	e := experiments.New(2)
	cfg := e.Cfg
	cfg.Style.NoPipelined = false
	streams := make([]map[string]int64, 4)
	for k := range streams {
		streams[k] = map[string]int64{
			"x1": int64(k + 1), "x2": int64(k * 3), "x3": int64(-k), "x4": 7,
		}
	}
	for i := 0; i < b.N; i++ {
		p := e.Partitioning(2, 2)
		res, _, err := chop.Run(p, cfg, chop.Iterative)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) == 0 {
			b.Fatal("no feasible design")
		}
		if err := chop.CosimVerifyStream(p, cfg, res.Best[0].Choice, streams, nil); err != nil {
			b.Fatal(err)
		}
	}
}
