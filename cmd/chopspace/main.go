// Command chopspace regenerates the design-space scatter data of the
// paper's Figures 7 and 8: every global design point encountered when the
// pruning is disabled, as CSV on stdout, plus the pruned-vs-full run-time
// comparison on stderr.
//
// Usage:
//
//	chopspace -exp 1        figure 7 (experiment 1, partitionings 1-3)
//	chopspace -exp 2        figure 8 (experiment 2, 1-partition implementation)
//	chopspace -exp 1 -svg   the same scatter as a standalone SVG document
package main

import (
	"flag"
	"fmt"
	"os"

	"chop/internal/experiments"
	"chop/internal/viz"
)

func main() {
	expN := flag.Int("exp", 1, "experiment number (1 = Figure 7, 2 = Figure 8)")
	svg := flag.Bool("svg", false, "emit the scatter as an SVG document instead of CSV")
	flag.Parse()
	if *expN != 1 && *expN != 2 {
		fmt.Fprintln(os.Stderr, "chopspace: -exp must be 1 or 2")
		os.Exit(2)
	}
	e := experiments.New(*expN)
	counts := []int{1, 2, 3}
	if *expN == 2 {
		// The paper restricted Figure 8 to the 1-partition implementation
		// ("we were unable to do so due to swap space problems").
		counts = []int{1}
	}
	fig, err := e.Explore(counts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chopspace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiment %d: %d predictions (%d unique), full search %d trials in %s, pruned %d trials in %s\n",
		*expN, fig.Predictions, fig.UniquePredictions,
		fig.FullTrials, fig.FullCPU, fig.PrunedTrials, fig.PrunedCPU)
	if *svg {
		title := fmt.Sprintf("Designs considered during experiment %d (%d points)", *expN, len(fig.Points))
		fmt.Println(viz.ScatterSVG(title, fig.Points))
		return
	}
	fmt.Print(experiments.FormatFigure(fig))
}
