package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"chop/internal/obs"
	"chop/internal/serve"
)

// top is the live terminal dashboard over the run telemetry plane. Two
// sources feed the same renderers:
//
//	chop top -addr http://host:8080            server overview (/api/v1/stats)
//	chop top -addr http://host:8080 -run <id>  one run's shard table (/api/v1/runs/{id}/stats)
//	chop top -f stats.jsonl                    tail a -stats-out time series
//
// The display is plain ANSI — a home-and-clear escape between frames, no
// terminal library — so it works in any terminal and degrades to sequential
// frames in a pipe. -once renders a single frame without clearing and
// exits, which is also what the tests drive.
func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of a chop serve instance")
	runID := fs.String("run", "", "watch one run's shard table instead of the server overview")
	file := fs.String("f", "", "tail a -stats-out JSONL file instead of polling a server")
	interval := fs.Float64("interval", 1, "refresh interval in seconds")
	once := fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file != "" && *runID != "" {
		return fmt.Errorf("top: -f and -run are mutually exclusive")
	}
	period := time.Duration(*interval * float64(time.Second))
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *file != "" {
		return topFile(ctx, *file, period, *once)
	}
	base := strings.TrimRight(*addr, "/")
	// Accept a bare host:port the way curl does; url.Parse would read the
	// port as a scheme.
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return topServer(ctx, base, *runID, period, *once)
}

// clearScreen is the between-frame reset: cursor home, then erase to the
// end of the screen (softer than a full clear — no flicker on repaint).
const clearScreen = "\x1b[H\x1b[J"

// topServer polls a serve instance and repaints. Watching a single run ends
// on its terminal state; the server overview runs until interrupted.
func topServer(ctx context.Context, addr, runID string, period time.Duration, once bool) error {
	for {
		var frame string
		var terminal bool
		if runID != "" {
			var p serve.RunStatsPayload
			if err := fetchJSON(ctx, addr+"/api/v1/runs/"+runID+"/stats", &p); err != nil {
				return err
			}
			frame = renderRunFrame(p)
			terminal = p.Run.State.Terminal()
		} else {
			var st serve.ServerStats
			if err := fetchJSON(ctx, addr+"/api/v1/stats", &st); err != nil {
				return err
			}
			frame = renderServerFrame(addr, st)
		}
		if once {
			fmt.Print(frame)
			return nil
		}
		fmt.Print(clearScreen + frame)
		if terminal {
			return nil
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-time.After(period):
		}
	}
}

// topFile renders the newest record of a -stats-out JSONL file and keeps
// tailing it for appended samples (the producing run may still be writing).
func topFile(ctx context.Context, path string, period time.Duration, once bool) error {
	var lastSeq int64 = -1
	for {
		rec, n, err := lastStatsRecord(path)
		if err != nil {
			return err
		}
		if n == 0 {
			if once {
				return fmt.Errorf("top: %s holds no stats records yet", path)
			}
		} else if rec.Seq != lastSeq || lastSeq == -1 {
			lastSeq = rec.Seq
			frame := renderRecordFrame(path, rec, n)
			if once {
				fmt.Print(frame)
				return nil
			}
			fmt.Print(clearScreen + frame)
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-time.After(period):
		}
	}
}

// lastStatsRecord scans a JSONL stats file and returns its newest record
// plus the total record count. A trailing partial line (a sample being
// written right now) is skipped rather than treated as corruption.
func lastStatsRecord(path string) (obs.StatsRecord, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return obs.StatsRecord{}, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var last obs.StatsRecord
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec obs.StatsRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		last, n = rec, n+1
	}
	return last, n, sc.Err()
}

// fetchJSON GETs a URL and decodes the JSON body.
func fetchJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("top: GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderServerFrame lays out the server overview: supervision state, cache
// and resilience counters, then one aggregate line per active run.
func renderServerFrame(addr string, st serve.ServerStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chop top — %s — %s\n\n", addr, st.Time.Format(time.TimeOnly))
	fmt.Fprintf(&b, "workers  %d/%d busy (%.0f%%)   queue %d   http %d requests\n",
		st.RunsInFlight, st.MaxConcurrent, st.Occupancy*100, st.QueueDepth, st.HTTPRequests)
	if len(st.Runs) > 0 {
		states := make([]string, 0, len(st.Runs))
		for state := range st.Runs {
			states = append(states, state)
		}
		sort.Strings(states)
		parts := make([]string, 0, len(states))
		for _, state := range states {
			parts = append(parts, fmt.Sprintf("%d %s", st.Runs[state], state))
		}
		fmt.Fprintf(&b, "runs     %s\n", strings.Join(parts, ", "))
	}
	if st.Cache != nil {
		fmt.Fprintf(&b, "cache    %d hits / %d misses (%.1f%% hit)\n",
			st.Cache.Hits, st.Cache.Misses, st.Cache.HitRate*100)
	}
	if len(st.Resilience) > 0 {
		keys := make([]string, 0, len(st.Resilience))
		for k := range st.Resilience {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, st.Resilience[k]))
		}
		fmt.Fprintf(&b, "resil    %s\n", strings.Join(parts, " "))
	}
	if len(st.Active) == 0 {
		b.WriteString("\nno active searches\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\nactive searches (%d):\n", len(st.Active))
	for _, sn := range st.Active {
		fmt.Fprintf(&b, "  %-12s %s\n", sn.Label, summaryLine(sn))
	}
	return b.String()
}

// renderRunFrame lays out one run: status envelope, aggregate progress,
// shard table and slow-trial exemplars.
func renderRunFrame(p serve.RunStatsPayload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s — %s %s\n\n", p.Run.ID, p.Run.Kind, p.Run.State)
	b.WriteString(renderSnapshot(p.Stats))
	return b.String()
}

// renderRecordFrame lays out one -stats-out sample: the sample header, the
// hottest counter deltas, and the embedded run fold when present.
func renderRecordFrame(path string, rec obs.StatsRecord, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chop top — %s — sample %d (%d on file) — %s\n\n",
		path, rec.Seq, n, time.UnixMilli(rec.T).Format(time.TimeOnly))
	if len(rec.CounterDeltas) > 0 && rec.IntervalSec > 0 {
		keys := make([]string, 0, len(rec.CounterDeltas))
		for k := range rec.CounterDeltas {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if rec.CounterDeltas[keys[i]] != rec.CounterDeltas[keys[j]] {
				return rec.CounterDeltas[keys[i]] > rec.CounterDeltas[keys[j]]
			}
			return keys[i] < keys[j]
		})
		if len(keys) > 8 {
			keys = keys[:8]
		}
		b.WriteString("rates:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-28s %10.0f/s\n", k, float64(rec.CounterDeltas[k])/rec.IntervalSec)
		}
		b.WriteString("\n")
	}
	if rec.Run != nil {
		b.WriteString(renderSnapshot(*rec.Run))
	} else {
		b.WriteString("no run stats in this sample\n")
	}
	return b.String()
}

// renderSnapshot is the shared run view: aggregate line, progress bar,
// cache/checkpoint lines, per-shard table, slow trials.
func renderSnapshot(sn obs.RunStatsSnapshot) string {
	var b strings.Builder
	if !sn.Started {
		b.WriteString("search not started\n")
		return b.String()
	}
	fmt.Fprintf(&b, "search   %s\n", summaryLine(sn))
	if sn.Total > 0 {
		fmt.Fprintf(&b, "progress %s\n", bar(sn.Trials, sn.Total, 40))
	}
	if sn.CacheHits+sn.CacheMisses > 0 {
		fmt.Fprintf(&b, "cache    %d hits / %d misses (%.1f%% hit)\n",
			sn.CacheHits, sn.CacheMisses, sn.CacheHitRate*100)
	}
	if sn.CheckpointSaves > 0 {
		fmt.Fprintf(&b, "ckpt     %d saves, lag %d shard(s), last %.1fs ago\n",
			sn.CheckpointSaves, sn.CheckpointLag, sn.CheckpointAgeSec)
	}
	if sn.Phases != nil && len(sn.Phases.Phases) > 0 {
		parts := make([]string, 0, len(sn.Phases.Phases))
		for _, p := range sn.Phases.Phases {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", p.Phase, p.TimePct))
		}
		fmt.Fprintf(&b, "phases   %s (%.0f%% of trial time attributed)\n",
			strings.Join(parts, "  "), sn.Phases.CoveragePct)
	}
	if len(sn.ShardTable) > 0 {
		fmt.Fprintf(&b, "\n  %5s  %-8s %12s %10s %8s  %s\n",
			"shard", "state", "trials", "rate/s", "eta", "")
		for _, sh := range sn.ShardTable {
			trials := fmt.Sprintf("%d", sh.Trials)
			if sh.Total > 0 {
				trials = fmt.Sprintf("%d/%d", sh.Trials, sh.Total)
			}
			rate, eta := "", ""
			if sh.TrialsPerSec > 0 {
				rate = fmt.Sprintf("%.0f", sh.TrialsPerSec)
			}
			if sh.ETASec > 0 {
				eta = fmtETA(sh.ETASec)
			}
			pb := ""
			if sh.Total > 0 {
				pb = bar(sh.Trials, sh.Total, 20)
			}
			fmt.Fprintf(&b, "  %5d  %-8s %12s %10s %8s  %s\n",
				sh.Index, sh.State, trials, rate, eta, pb)
		}
	}
	if len(sn.SlowTrials) > 0 {
		b.WriteString("\nslowest trials:\n")
		for _, e := range sn.SlowTrials {
			verdict := "feasible"
			if !e.Feasible {
				verdict = "rejected"
				if e.Reason != "" {
					verdict += " (" + e.Reason + ")"
				}
			}
			fmt.Fprintf(&b, "  %9.0f µs  shard %d  ii=%d  %s\n", e.DurUS, e.Shard, e.II, verdict)
		}
	}
	return b.String()
}

// summaryLine compresses a snapshot's aggregate state into one line.
func summaryLine(sn obs.RunStatsSnapshot) string {
	var b strings.Builder
	if sn.Total > 0 {
		fmt.Fprintf(&b, "%d/%d trials", sn.Trials, sn.Total)
	} else {
		fmt.Fprintf(&b, "%d trials", sn.Trials)
	}
	fmt.Fprintf(&b, ", %d feasible", sn.Feasible)
	if sn.TrialsPerSec > 0 {
		fmt.Fprintf(&b, ", %.0f trials/s", sn.TrialsPerSec)
	}
	if sn.ETASec > 0 {
		fmt.Fprintf(&b, ", eta %s", fmtETA(sn.ETASec))
	}
	fmt.Fprintf(&b, ", shards %d/%d done", sn.ShardsDone, sn.Shards)
	if sn.Done() {
		b.WriteString(" [complete]")
	}
	return b.String()
}

// bar renders a [####----] progress bar with a percentage.
func bar(done, total int64, width int) string {
	if total <= 0 {
		return ""
	}
	frac := float64(done) / float64(total)
	if frac > 1 {
		frac = 1
	}
	fill := int(frac * float64(width))
	return fmt.Sprintf("[%s%s] %3.0f%%",
		strings.Repeat("#", fill), strings.Repeat("-", width-fill), frac*100)
}

// fmtETA renders an ETA compactly: sub-minute in seconds, then m/h.
func fmtETA(secs float64) string {
	switch {
	case secs < 60:
		return fmt.Sprintf("%.1fs", secs)
	case secs < 3600:
		return fmt.Sprintf("%.1fm", secs/60)
	default:
		return fmt.Sprintf("%.1fh", secs/3600)
	}
}
