package main

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"chop/internal/loadgen"
	"chop/internal/serve"
)

// TestLoadgenCompareGateCLI drives the documented SLO workflow end to end
// against an in-process serve instance: record a baseline, gate a clean
// live re-run against it (must pass), inject a goroutine leak into the
// recorded report (offline gate must fail), then shrink the baseline's p99
// latencies so an unchanged live re-run reads as a latency regression
// (live gate must fail non-zero).
func TestLoadgenCompareGateCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live load three times")
	}
	s := serve.New(serve.Options{MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Drain(context.Background())
	}()

	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	newer := filepath.Join(dir, "loadgen.json")
	// Generous tolerances: sub-millisecond p99s are noisy run to run, and
	// the injected regressions below overshoot these bounds by 100x.
	common := []string{"-addr", ts.URL, "-kind", "eval", "-rps", "25",
		"-duration", "1", "-stream", "0.3", "-cancel", "0.1", "-poll", "0.02",
		"-tolerance", "900", "-leak-tolerance", "100"}

	if err := loadgenCmd(append([]string{"-json", base}, common...)); err != nil {
		t.Fatalf("recording baseline: %v", err)
	}
	if err := loadgenCmd(append([]string{"-json", newer, "-compare", base}, common...)); err != nil {
		t.Fatalf("clean re-run against own baseline failed: %v", err)
	}

	// Goroutine leak: doctor the recorded run's after-sample and re-gate the
	// two files offline.
	cur, err := loadgen.Load(newer)
	if err != nil {
		t.Fatal(err)
	}
	cur.GoroutinesAfter = cur.GoroutinesBefore + 1000
	if err := cur.Save(newer); err != nil {
		t.Fatal(err)
	}
	err = loadgenCmd([]string{"-compare", base, newer, "-tolerance", "900", "-leak-tolerance", "100"})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("injected goroutine leak not gated, got %v", err)
	}

	// p99 latency: a baseline claiming 1000x faster submits makes the
	// unchanged server read as regressed on the next live gated run.
	rep, err := loadgen.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	rep.Submit.P99MS *= 0.001
	rep.TTFB.P99MS *= 0.001
	if err := rep.Save(base); err != nil {
		t.Fatal(err)
	}
	err = loadgenCmd(append([]string{"-json", filepath.Join(dir, "regressed.json"), "-compare", base}, common...))
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("injected p99 latency regression not gated, got %v", err)
	}
}

func TestLoadgenOfflineCompareNeedsReports(t *testing.T) {
	if err := loadgenCmd([]string{"-compare", "no-such.json", "also-missing.json"}); err == nil {
		t.Fatal("want error for missing reports")
	}
}
