package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"chop/internal/obs"
	"chop/internal/serve"
	"chop/internal/spec"
)

// submit posts a run to a serve instance as a traced client: it roots a
// distributed trace (or joins one via -traceparent), injects the W3C
// traceparent on the API calls, and — with -trace-out — records its own
// half of the trace as JSONL. Stitch it with the server's -trace file:
//
//	chop serve -trace server.jsonl &
//	chop submit -kind eval -trace-out client.jsonl -wait
//	chop trace client.jsonl server.jsonl
func submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve base URL")
	kind := fs.String("kind", "eval", "run kind: eval, synth, exp1, exp2")
	file := fs.String("f", "", "partitioning spec file (JSON); empty uses the built-in example spec for eval/synth")
	traceOut := fs.String("trace-out", "", "record the client's JSONL trace to this file (stitch with 'chop trace')")
	tp := fs.String("traceparent", "", "join an existing distributed trace instead of rooting a new one")
	wait := fs.Bool("wait", false, "poll until the run reaches a terminal state; non-done states exit nonzero")
	poll := fs.Duration("poll", 200*time.Millisecond, "polling cadence for -wait")
	timeoutSec := fs.Float64("timeout-sec", 0, "per-run wall-clock deadline passed to the server (0 = server default)")
	retryFor := fs.Duration("retry-for", 0, "keep retrying the server's health probe for this long before submitting (smoke scripts racing startup)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var specJSON json.RawMessage
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		specJSON = data
	case *kind == "eval" || *kind == "synth":
		data, err := json.Marshal(spec.Example())
		if err != nil {
			return err
		}
		specJSON = data
	}

	// The client's side of the trace: a root span covering the whole
	// submission (or a child of -traceparent), recorded to -trace-out.
	topts := obs.TracerOptions{}
	if *tp != "" {
		tc, err := obs.ParseTraceparent(*tp)
		if err != nil {
			return fmt.Errorf("-traceparent: %w", err)
		}
		topts.Context = tc
	}
	var sink *obs.FileSink
	if *traceOut != "" {
		var err error
		sink, err = obs.NewFileSink(*traceOut)
		if err != nil {
			return err
		}
	}
	tracer := obs.NewTracer(sinkOrNil(sink), topts)
	root := tracer.Span("submit", obs.F("kind", *kind), obs.F("addr", *addr))

	ctx := context.Background()
	if tc := root.Context(); tc.Valid() {
		ctx = obs.WithTraceContext(ctx, tc)
	} else if topts.Context.Valid() {
		// No local recording: still forward the caller's context verbatim.
		ctx = obs.WithTraceContext(ctx, topts.Context)
	}
	client := &serve.Client{Base: *addr}

	err := func() error {
		if *retryFor > 0 {
			deadline := time.Now().Add(*retryFor)
			for {
				if err := client.Health(ctx); err == nil {
					break
				} else if time.Now().After(deadline) {
					return fmt.Errorf("server at %s not healthy after %v: %w", *addr, *retryFor, err)
				}
				time.Sleep(200 * time.Millisecond)
			}
		}
		st, err := client.Submit(ctx, serve.SubmitSpec{
			Kind: *kind, Spec: specJSON, TimeoutSec: *timeoutSec,
		})
		if err != nil {
			return err
		}
		root.Point("accepted", obs.F("run", st.ID), obs.F("state", string(st.State)))
		fmt.Printf("run %s accepted (kind %s, state %s)\n", st.ID, st.Kind, st.State)
		if st.TraceID != "" {
			fmt.Printf("trace %s\n", st.TraceID)
		}
		if !*wait {
			return nil
		}
		final, err := client.Await(ctx, st.ID, *poll)
		if err != nil {
			return err
		}
		root.Point("finished", obs.F("state", string(final.State)))
		fmt.Printf("run %s finished: %s\n", final.ID, final.State)
		if final.Error != "" {
			fmt.Printf("error: %s\n", final.Error)
		}
		if final.State != serve.StateDone {
			return fmt.Errorf("run %s ended %s", final.ID, final.State)
		}
		return nil
	}()

	if err != nil {
		root.End(obs.F("error", err.Error()))
	} else {
		root.End()
	}
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = cerr
		} else if cerr == nil {
			fmt.Fprintf(os.Stderr, "client trace written to %s (stitch with: chop trace %s <server trace>)\n",
				*traceOut, *traceOut)
		}
	}
	return err
}

// sinkOrNil converts a possibly-nil *obs.FileSink into the obs.Sink
// interface without the classic non-nil-interface-to-nil-pointer trap.
func sinkOrNil(s *obs.FileSink) obs.Sink {
	if s == nil {
		return nil
	}
	return s
}
