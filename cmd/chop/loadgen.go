package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chop/internal/loadgen"
	"chop/internal/spec"
)

// loadgenCmd drives the SLO harness (internal/loadgen) against a live
// serve instance, or gates loadgen reports against each other:
//
//	chop loadgen -addr http://127.0.0.1:8080 -rps 20 -duration 10   # measure, write loadgen.json
//	chop loadgen -compare baseline.json                              # measure, then gate vs baseline
//	chop loadgen -compare old.json new.json                          # offline: gate one report vs another
//
// The gates are the serve plane's SLOs: p99 submit and time-to-first-byte
// latency growth against -tolerance, and the run's own goroutine/FD growth
// against -leak-tolerance (a leak budget, not a baseline delta). Any fired
// gate exits non-zero, which is what CI and `make loadgen-smoke` hook into.
func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve base URL")
	apiKey := fs.String("api-key", "", "tenant API key for an admission-controlled server (also $CHOP_API_KEY)")
	kind := fs.String("kind", "eval", "run kind to submit")
	file := fs.String("f", "", "submission spec file (JSON); default: the built-in example spec for eval/synth kinds")
	rps := fs.Float64("rps", 5, "target submit rate, requests per second (open loop)")
	duration := fs.Float64("duration", 5, "measured window in seconds")
	inflight := fs.Int("inflight", 64, "max concurrently outstanding runs; saturated schedule ticks are skipped")
	cancelFrac := fs.Float64("cancel", 0.1, "fraction of accepted runs cancelled right after submit")
	streamFrac := fs.Float64("stream", 0.25, "fraction of accepted runs whose SSE trace stream is consumed")
	subs := fs.Int("subs", 2, "SSE subscribers per streamed run (fan-out width)")
	timeoutSec := fs.Float64("timeout", 0, "per-run timeoutSec forwarded in each submission (0: server default)")
	poll := fs.Float64("poll", 0.1, "initial Await polling delay in seconds (backs off with jitter)")
	seed := fs.Int64("seed", 1, "seed of the deterministic cancel/stream mix")
	jsonOut := fs.String("json", "loadgen.json", "write the report to this path ('' disables)")
	compareOld := fs.String("compare", "", "baseline loadgen json: gate this run against it, or with a positional new.json compare offline")
	tolerance := fs.Float64("tolerance", 25, "p99 latency regression tolerance in percent for -compare (0 disables)")
	leakTolerance := fs.Int("leak-tolerance", 10, "allowed within-run goroutine growth (and x4 FDs) before the leak gate fires (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tol := loadgen.Tolerances{
		LatencyPct:      *tolerance,
		GoroutineGrowth: *leakTolerance,
		FDGrowth:        4 * *leakTolerance,
	}
	// Offline mode: two existing reports, no traffic.
	if *compareOld != "" && fs.NArg() > 0 {
		rest := fs.Args()
		newPath := rest[0]
		// Allow flags after the positional file, as chop bench does.
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		tol.LatencyPct = *tolerance
		tol.GoroutineGrowth = *leakTolerance
		tol.FDGrowth = 4 * *leakTolerance
		cur, err := loadgen.Load(newPath)
		if err != nil {
			return err
		}
		return loadgenGate(*compareOld, cur, tol)
	}

	key := *apiKey
	if key == "" {
		key = os.Getenv("CHOP_API_KEY")
	}
	var rawSpec json.RawMessage
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		rawSpec = data
	case *kind == "eval" || *kind == "synth":
		data, err := json.Marshal(spec.Example())
		if err != nil {
			return err
		}
		rawSpec = data
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "loadgen: driving %s kind=%s at %.1f rps for %.0fs\n",
		*addr, *kind, *rps, *duration)
	rep, err := loadgen.Run(ctx, loadgen.Options{
		Base:           *addr,
		APIKey:         key,
		Kind:           *kind,
		Spec:           rawSpec,
		RPS:            *rps,
		Duration:       time.Duration(*duration * float64(time.Second)),
		MaxInFlight:    *inflight,
		CancelFraction: *cancelFrac,
		StreamFraction: *streamFrac,
		Subscribers:    *subs,
		TimeoutSec:     *timeoutSec,
		Poll:           time.Duration(*poll * float64(time.Second)),
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(loadgen.FormatReport(rep))
	if *jsonOut != "" {
		if err := rep.Save(*jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s (gate with: chop loadgen -compare %s)\n",
			*jsonOut, *jsonOut)
	}
	if *compareOld != "" {
		return loadgenGate(*compareOld, rep, tol)
	}
	return nil
}

// loadgenGate compares a report against the baseline at oldPath and turns
// any fired gate into a non-zero exit.
func loadgenGate(oldPath string, cur *loadgen.Report, tol loadgen.Tolerances) error {
	old, err := loadgen.Load(oldPath)
	if err != nil {
		return err
	}
	findings, regressed := loadgen.Compare(old, cur, tol)
	if len(findings) == 0 {
		return fmt.Errorf("loadgen: no comparable gates between baseline and current report (latency samples missing?)")
	}
	fmt.Print(loadgen.FormatFindings(findings))
	if regressed {
		return fmt.Errorf("loadgen: SLO regression beyond tolerance (latency %.0f%%, goroutine leak budget %d)",
			tol.LatencyPct, tol.GoroutineGrowth)
	}
	fmt.Printf("no SLO regression across %d gates\n", len(findings))
	return nil
}
