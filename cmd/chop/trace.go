package main

import (
	"flag"
	"fmt"
	"os"

	"chop/internal/obs"
)

// traceCmd stitches JSONL trace files from any number of chop processes
// (a client's -trace file, a server's serve -trace file, CLI runs) into
// merged per-trace-ID span trees, and renders either a text waterfall
// with critical-path attribution or a Perfetto/Chrome trace_event JSON
// file for ui.perfetto.dev.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	format := fs.String("o", "text", "output format: text (waterfall + critical path) or perfetto (Chrome trace_event JSON)")
	outPath := fs.String("out", "", "write the rendering to this file instead of stdout")
	failOnOrphans := fs.Bool("fail-on-orphans", false, "exit nonzero if any stitched span references a parent no source recorded")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("trace: at least one JSONL trace file required\nusage: chop trace [-o text|perfetto] [-out file] [-fail-on-orphans] trace.jsonl...")
	}

	sources := make([]obs.StitchSource, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sources = append(sources, obs.StitchSource{Name: path, R: f})
	}
	traces, err := obs.Stitch(sources)
	if err != nil {
		return err
	}

	var rendered []byte
	switch *format {
	case "text":
		rendered = []byte(obs.FormatStitch(traces))
	case "perfetto":
		rendered, err = obs.Perfetto(traces)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: unknown format %q (want text or perfetto)", *format)
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, rendered, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "stitched %d trace(s) from %d file(s) into %s", len(traces), len(files), *outPath)
		if *format == "perfetto" {
			fmt.Fprint(os.Stderr, " (open at https://ui.perfetto.dev)")
		}
		fmt.Fprintln(os.Stderr)
	} else {
		os.Stdout.Write(rendered)
	}

	if n := obs.OrphanCount(traces); n > 0 {
		msg := fmt.Sprintf("trace: %d orphan span(s) — parents missing from the stitched sources", n)
		if *failOnOrphans {
			return fmt.Errorf("%s", msg)
		}
		fmt.Fprintln(os.Stderr, msg)
	}
	return nil
}
