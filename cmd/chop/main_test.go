package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chop/internal/core"
)

// parseObs builds an obsFlags the way every run-style command does.
func parseObs(t *testing.T, args ...string) *obsFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return of
}

// openFDs counts this process's open file descriptors, so the tests can
// prove attach does not leak handles on its error paths.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate fds on this platform: %v", err)
	}
	return len(ents)
}

func TestAttachTraceUnwritable(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "trace.jsonl")
	of := parseObs(t, "-trace", bad)
	var cfg core.Config
	if _, err := of.attach(&cfg); err == nil {
		t.Fatal("attach must fail for an unwritable -trace path")
	}
}

// TestAttachPromUnwritable: the -prom file is created at attach time, so a
// bad path fails before the run, and the already-opened trace file is
// closed rather than leaked.
func TestAttachPromUnwritable(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	badProm := filepath.Join(dir, "no", "such", "dir", "metrics.prom")
	before := openFDs(t)
	of := parseObs(t, "-trace", tracePath, "-prom", badProm)
	var cfg core.Config
	if _, err := of.attach(&cfg); err == nil {
		t.Fatal("attach must fail for an unwritable -prom path")
	}
	if after := openFDs(t); after != before {
		t.Fatalf("fd leak: %d open before failed attach, %d after", before, after)
	}
}

// TestAttachProfilerFailureClosesFiles: when the profiler cannot start, the
// trace and prom files opened earlier in attach are both closed.
func TestAttachProfilerFailureClosesFiles(t *testing.T) {
	dir := t.TempDir()
	badCPU := filepath.Join(dir, "no", "such", "dir", "cpu.out")
	before := openFDs(t)
	of := parseObs(t,
		"-trace", filepath.Join(dir, "trace.jsonl"),
		"-prom", filepath.Join(dir, "metrics.prom"),
		"-cpuprofile", badCPU)
	var cfg core.Config
	if _, err := of.attach(&cfg); err == nil {
		t.Fatal("attach must fail when the profiler cannot start")
	}
	if after := openFDs(t); after != before {
		t.Fatalf("fd leak: %d open before failed attach, %d after", before, after)
	}
}

// TestAttachPromHappyPath: the file exists as soon as attach returns, and
// finish fills it with Prometheus text exposition.
func TestAttachPromHappyPath(t *testing.T) {
	promPath := filepath.Join(t.TempDir(), "metrics.prom")
	of := parseObs(t, "-prom", promPath)
	var cfg core.Config
	finish, err := of.attach(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(promPath); err != nil {
		t.Fatalf("-prom file not created eagerly: %v", err)
	}
	cfg.Metrics.Add("core.trials", 3)
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "chop_core_trials 3") {
		t.Fatalf("prom output missing counter:\n%s", data)
	}
}

func TestLogFlagsBadLevel(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	lf := addLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "verbose"}); err != nil {
		t.Fatal(err)
	}
	if _, err := lf.logger(); err == nil {
		t.Fatal("bogus -log-level must be rejected")
	}
}

func TestLogFlagsLevels(t *testing.T) {
	for _, lvl := range []string{"debug", "info", "warn", "error"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		lf := addLogFlags(fs)
		if err := fs.Parse([]string{"-log-level", lvl, "-log-json"}); err != nil {
			t.Fatal(err)
		}
		if _, err := lf.logger(); err != nil {
			t.Errorf("level %s rejected: %v", lvl, err)
		}
	}
}

func TestVersionCmd(t *testing.T) {
	if err := version(); err != nil {
		t.Fatal(err)
	}
}
