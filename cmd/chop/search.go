package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chop/internal/bad"
	"chop/internal/core"
	"chop/internal/dist"
	"chop/internal/obs"
	"chop/internal/spec"
)

// searchCmd runs the design-space search for a spec, either in-process
// (like eval, but result-focused: -json emits the merged SearchResult) or
// distributed across a chop serve fleet with -distributed -workers-url.
// Both modes produce byte-identical results for the same spec, which is
// what the dist-smoke chaos gate diffs.
func searchCmd(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	file := fs.String("f", "", "partitioning spec file (JSON)")
	jsonOut := fs.Bool("json", false, "print the merged search result as indented JSON on stdout (summary moves to stderr)")
	distributed := fs.Bool("distributed", false, "farm the search out to a chop serve fleet (-workers-url)")
	workersURL := fs.String("workers-url", "", "comma-separated base URLs of the serve fleet, e.g. http://a:8080,http://b:8080")
	apiKey := fs.String("api-key", "", "tenant API key for admission-controlled workers")
	leaseTTL := fs.Duration("lease", 0, "lease liveness TTL: a worker silent this long loses its shards (0 = 10s)")
	maxLease := fs.Duration("max-lease", 0, "hard cap on one lease's lifetime regardless of renewals (0 = 6x -lease)")
	stealAfter := fs.Duration("steal-after", 0, "lease age past which idle workers steal its unfinished tail (0 = -lease)")
	shards := fs.Int("shards", 0, "requested shard count, enumeration heuristic only (0 = 4x fleet size)")
	maxLeaseShards := fs.Int("max-lease-shards", 0, "max shards granted per lease (0 = unlimited)")
	drainGrace := fs.Duration("drain-grace", 0, "keep consuming straggler results this long after the search completes, so late deliveries hit the epoch fence instead of vanishing")
	poll := fs.Duration("poll", 0, "worker status-poll cadence (0 = 100ms)")
	lf := addLogFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("search: -f spec.json required")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	prob, err := spec.Parse(data)
	if err != nil {
		return err
	}
	finish, err := of.attach(&prob.Config)
	if err != nil {
		return err
	}

	start := time.Now()
	var res core.SearchResult
	var preds []bad.Result
	if *distributed {
		err = func() error {
			fleet := splitURLs(*workersURL)
			if len(fleet) == 0 {
				return fmt.Errorf("search: -distributed requires -workers-url url[,url...]")
			}
			log, lerr := lf.logger()
			if lerr != nil {
				return lerr
			}
			// The coordinator always gets a registry so the fleet summary
			// below has counters to read, even without -metrics; attach's
			// registry is reused when present so -metrics/-prom see the
			// dist.* counters too.
			m := prob.Config.Metrics
			if m == nil {
				m = obs.NewMetrics()
			}
			o := dist.Options{
				Workers:        fleet,
				APIKey:         *apiKey,
				LeaseTTL:       *leaseTTL,
				MaxLease:       *maxLease,
				StealAfter:     *stealAfter,
				Shards:         *shards,
				MaxLeaseShards: *maxLeaseShards,
				DrainGrace:     *drainGrace,
				Poll:           *poll,
				CheckpointPath: prob.Config.CheckpointPath,
				Resume:         prob.Config.Resume,
				Metrics:        m,
				Trace:          prob.Config.Trace,
				Log:            log,
				Inject:         prob.Config.Inject,
			}
			c, err := dist.New(data, o)
			if err != nil {
				return err
			}
			ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
			defer stop()
			res, preds, err = c.Run(ctx)
			if err != nil {
				return err
			}
			plan := c.Plan()
			fmt.Fprintf(os.Stderr, "fleet: %d workers, %d shards, signature %.12s..\n",
				len(fleet), plan.Shards, plan.Signature)
			fmt.Fprintf(os.Stderr,
				"leases: granted=%d renewed=%d expired=%d stolen=%d; shards: reassigned=%d stolen=%d resumed=%d\n",
				m.Counter("dist.leases.granted"), m.Counter("dist.leases.renewed"),
				m.Counter("dist.leases.expired"), m.Counter("dist.leases.stolen"),
				m.Counter("dist.shards.reassigned"), m.Counter("dist.shards.stolen"),
				m.Counter("dist.shards.resumed"))
			fmt.Fprintf(os.Stderr,
				"results: accepted=%d superseded=%d duplicate=%d missing=%d; workers: failed=%d quarantined=%d\n",
				m.Counter("dist.results.accepted"), m.Counter("dist.results.rejected.superseded"),
				m.Counter("dist.results.rejected.duplicate"), m.Counter("dist.results.missing"),
				m.Counter("dist.workers.failed"), m.Counter("dist.workers.quarantined"))
			return nil
		}()
	} else {
		res, preds, err = core.Run(prob.Partitioning, prob.Config, prob.Heuristic)
	}
	if ferr := finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// With -json, stdout carries only the result document (the smoke gate
	// byte-compares it against a serial run), so the summary moves aside.
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = os.Stderr
	}
	fmt.Fprintf(out, "partitions: %d on %d chips, heuristic %s, %s\n",
		prob.Partitioning.NumParts(), len(prob.Partitioning.Chips.Chips),
		prob.Heuristic, elapsed.Round(time.Millisecond))
	for i, r := range preds {
		fmt.Fprintf(out, "  partition %d: %d predictions, %d kept, %d feasible\n",
			i+1, r.Total, len(r.Designs), r.Feasible)
	}
	fmt.Fprintf(out, "trials: %d, feasible: %d, non-inferior: %d\n",
		res.Trials, res.FeasibleTrials, len(res.Best))
	for _, b := range res.Best {
		fmt.Fprintf(out, "  interval=%d cycles  delay=%d cycles  clock=%.0f ns  (perf %.0f ns, delay %.0f ns)\n",
			b.IIMain, b.DelayMain, b.Clock.ML, b.PerfNS.ML, b.DelayNS.ML)
	}
	if *jsonOut {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
	}
	return nil
}

// splitURLs parses the comma-separated -workers-url value, dropping empty
// segments and trailing slashes so fleet URLs compare cleanly.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
