package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"chop/internal/obs"
	"chop/internal/resilience"
	"chop/internal/serve"
)

// logFlags is the structured-logging flag pair shared by commands that emit
// slog records: -log-level selects the threshold, -log-json switches the
// handler from human-readable text to one-JSON-object-per-line.
type logFlags struct {
	level *string
	json  *bool
}

func addLogFlags(fs *flag.FlagSet) *logFlags {
	return &logFlags{
		level: fs.String("log-level", "info", "log threshold: debug, info, warn, error"),
		json:  fs.Bool("log-json", false, "emit logs as JSON lines instead of text"),
	}
}

// logger builds the slog.Logger the flags describe, writing to stderr so
// command output on stdout stays machine-consumable.
func (l *logFlags) logger() (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*l.level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if *l.json {
		h = slog.NewJSONHandler(os.Stderr, ho)
	} else {
		h = slog.NewTextHandler(os.Stderr, ho)
	}
	return slog.New(h), nil
}

// serveCmd runs the CHOP HTTP service plane until SIGINT/SIGTERM, then
// drains gracefully: readiness flips to 503, queued runs are cancelled,
// in-flight search contexts are cancelled, and open SSE streams close.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 0, "max simultaneously executing runs (0 = NumCPU)")
	queue := fs.Int("queue", 0, "queued-run backlog beyond the concurrency bound (0 = default 64)")
	ring := fs.Int("ring", 0, "per-run trace replay ring capacity (0 = default 4096)")
	grace := fs.Duration("grace", 0, "graceful-shutdown grace period (0 = default 10s)")
	predictCache := fs.Int("predict-cache", 0, "server-wide BAD prediction cache entries (0 = default capacity, negative = disabled)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-run wall-clock deadline; runs exceeding it are marked failed (0 = unbounded, overridable per submission via timeoutSec)")
	checkpointDir := fs.String("checkpoint-dir", "", "directory for search checkpoints named by submissions (empty = checkpointing disabled)")
	apiKeys := fs.String("api-keys", "", "tenant keyfile ({\"tenants\": [...]} JSON) enabling multi-tenant admission control; empty keeps the server open-access")
	injectSpec := fs.String("inject", "", "fault-injection spec for chaos testing (default: $"+resilience.EnvFaultInject+")")
	traceFile := fs.String("trace", "", "record the server's side of every sampled distributed trace (HTTP spans + job runs) as JSONL to this file; stitch with 'chop trace'")
	traceSample := fs.Float64("trace-sample", 0, "head-sampling rate for traces the server roots itself (0 = record all, 0<r<1 = that fraction, negative = none; caller traceparents and error responses always win)")
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := lf.logger()
	if err != nil {
		return err
	}
	slog.SetDefault(log)

	inject, err := resilience.Parse(*injectSpec)
	if err != nil {
		return err
	}
	if inject == nil {
		if inject, err = resilience.FromEnv(); err != nil {
			return fmt.Errorf("$%s: %w", resilience.EnvFaultInject, err)
		}
	}
	if inject != nil {
		log.Warn("fault injection ACTIVE", "spec", inject.String())
	}
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return fmt.Errorf("-checkpoint-dir: %w", err)
		}
	}
	var tenants []serve.TenantConfig
	if *apiKeys != "" {
		if tenants, err = serve.LoadTenants(*apiKeys); err != nil {
			return fmt.Errorf("-api-keys: %w", err)
		}
		log.Info("admission control ACTIVE", "tenants", len(tenants))
	}

	// The trace file outlives ListenAndServe so a SIGTERM'd server still
	// flushes its buffered JSONL before exiting.
	var traceSink *obs.FileSink
	if *traceFile != "" {
		var err error
		traceSink, err = obs.NewFileSink(*traceFile)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	bi := obs.ReadBuildInfo()
	log.Info("chop serve starting", "addr", *addr,
		"goVersion", bi.GoVersion, "revision", bi.Revision)
	s := serve.New(serve.Options{
		Addr:              *addr,
		MaxConcurrent:     *maxConcurrent,
		QueueDepth:        *queue,
		RingCapacity:      *ring,
		ShutdownGrace:     *grace,
		Log:               log,
		PredictCache:      *predictCache,
		DefaultJobTimeout: *jobTimeout,
		CheckpointDir:     *checkpointDir,
		Tenants:           tenants,
		Inject:            inject,
		TraceSink:         sinkOrNil(traceSink),
		TraceSampleRate:   *traceSample,
	})
	err = s.ListenAndServe(ctx)
	if traceSink != nil {
		if cerr := traceSink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("-trace: %w", cerr)
		} else if cerr == nil {
			log.Info("server trace written", "file", *traceFile)
		}
	}
	return err
}

// version prints the binary's build identity — the same facts /metrics
// exposes as the chop_build_info gauge.
func version() error {
	bi := obs.ReadBuildInfo()
	dirty := ""
	if bi.Dirty {
		dirty = " (modified)"
	}
	fmt.Printf("chop %s\n  module:   %s\n  revision: %s%s\n", bi.GoVersion, bi.Module, bi.Revision, dirty)
	return nil
}
