// Command chop is the constraint-driven system-level partitioner CLI. It
// regenerates the paper's evaluation and evaluates user partitioning specs.
//
// Usage:
//
//	chop tables            print the paper's Table 1 (library) and Table 2 (packages)
//	chop exp1              run experiment 1 and print Tables 3 and 4
//	chop exp2              run experiment 2 and print Tables 5 and 6
//	chop graph [-g name]   print a benchmark data-flow graph (Fig. 6 class)
//	chop spec              print an example partitioning spec (JSON)
//	chop eval -f spec.json evaluate a partitioning spec
//	chop search -f spec.json  run the search; -distributed farms shards to a serve fleet
//	chop advise -f spec.json  interactive advisor session (commands on stdin)
//	chop explain -f trace.jsonl  replay a -trace file into a readable report
//	chop trace a.jsonl b.jsonl   stitch multi-process traces into one tree (-o perfetto exports for ui.perfetto.dev)
//	chop submit            submit a run to a serve instance, propagating W3C trace context
//	chop bench             run the performance harness, emit/compare BENCH JSON
//	chop profile           profile a workload with per-phase attribution, diff against a baseline
//	chop serve             start the HTTP service plane (runs, SSE traces, /metrics)
//	chop loadgen           drive a live serve instance at a target RPS, gate SLOs vs a baseline
//	chop top               live terminal dashboard over a serve instance or a -stats-out file
//	chop version           print the binary's build identity
//
// The run-style commands (eval, synth, exp1, exp2, advise) share the
// observability flags: -trace <file> records a JSONL trace, -metrics
// prints the counter/histogram registry afterward, -prom <file> writes it
// in Prometheus text format, -progress prints throttled live progress on
// stderr, -stats-out <file> appends a JSONL telemetry time series (tail it
// with 'chop top -f'), and -cpuprofile/-memprofile/-blockprofile collect
// runtime/pprof profiles. They also share the execution knobs: -workers selects the
// search parallelism (deterministic — any worker count produces the serial
// result) and -predict-cache memoizes BAD predictions in a bounded LRU.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chop/internal/advisor"
	"chop/internal/bad"
	"chop/internal/core"
	"chop/internal/cosim"
	"chop/internal/dfg"
	"chop/internal/experiments"
	"chop/internal/hlspec"
	"chop/internal/obs"
	"chop/internal/resilience"
	"chop/internal/rtl"
	"chop/internal/sim"
	"chop/internal/spec"
	"chop/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tables":
		err = tables()
	case "exp1":
		err = experiment(1, os.Args[2:])
	case "exp2":
		err = experiment(2, os.Args[2:])
	case "bench":
		err = bench(os.Args[2:])
	case "profile":
		err = profile(os.Args[2:])
	case "graph":
		err = graph(os.Args[2:])
	case "spec":
		err = printSpec()
	case "eval":
		err = eval(os.Args[2:])
	case "search":
		err = searchCmd(os.Args[2:])
	case "advise":
		err = advise(os.Args[2:])
	case "explain":
		err = explain(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "submit":
		err = submit(os.Args[2:])
	case "compile":
		err = compile(os.Args[2:])
	case "synth":
		err = synth(os.Args[2:])
	case "accuracy":
		err = accuracy()
	case "serve":
		err = serveCmd(os.Args[2:])
	case "loadgen":
		err = loadgenCmd(os.Args[2:])
	case "top":
		err = top(os.Args[2:])
	case "version":
		err = version()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "chop: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chop:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: chop <command>

  tables               print Table 1 (component library) and Table 2 (chip packages)
  exp1                 run paper experiment 1 (Tables 3 and 4)
  exp2                 run paper experiment 2 (Tables 5 and 6)
  graph [-g name]      print a benchmark graph (ar, ewf, fir, diffeq)
  spec                 print an example partitioning spec (JSON)
  eval -f spec.json    evaluate a partitioning spec
  search -f spec.json  run the design-space search and print/emit the merged
                       result (-json); -distributed -workers-url a,b farms
                       shards out to a chop serve fleet with lease-based
                       fault tolerance (-lease, -max-lease, -steal-after,
                       -shards, -max-lease-shards, -drain-grace, -poll,
                       -api-key) — byte-identical to the local run
  advise -f spec.json  interactive advisor session (commands on stdin)
  explain -f trace.jsonl  replay a trace into a per-stage time and rejection report
                       (-stats prints the search-statistics report instead)
  trace files...       stitch JSONL traces from multiple processes into merged
                       span trees: waterfall + critical-path attribution, or
                       -o perfetto for ui.perfetto.dev (-out file,
                       -fail-on-orphans gates on missing parents)
  submit               submit a spec to a serve instance and propagate W3C
                       trace context (-addr, -kind, -f spec.json, -trace-out
                       client.jsonl, -wait, -retry-for; prints the run id and
                       traceparent)
  compile -f prog.hls  compile a behavioral program (loops unrolled) and print its DFG
  synth -f spec.json   synthesize the fastest feasible design to RTL, verify it, emit Verilog
  accuracy             compare BAD predictions against bound netlists
  bench                run the performance harness (-json writes BENCH_<n>.json,
                       -compare old.json new.json gates regressions, also on
                       allocs/op with -alloc-tolerance)
  profile              profile one workload with per-phase time and allocation
                       attribution (-dir writes cpu.pprof/heap.pprof/profile.json,
                       -compare <baseline> gates allocs/op regressions)
  serve                start the HTTP service plane (-addr, -max-concurrent,
                       -queue, -ring, -grace, -predict-cache, -job-timeout,
                       -checkpoint-dir, -inject, -log-level, -log-json); submit
                       runs on POST /api/v1/runs, stream traces on
                       /api/v1/runs/{id}/events, scrape /metrics; -api-keys
                       file.json turns on multi-tenant admission control
                       (quotas, submit rates, priority preemption)
  loadgen              drive a live serve instance with a submit/stream/cancel
                       mix at a target rate (-addr, -rps, -duration, -stream,
                       -cancel, -subs, -api-key), measure p50/p95/p99 submit
                       and TTFB latency plus goroutine/FD stability, write
                       loadgen.json; -compare baseline.json gates the SLOs
                       (p99 growth beyond -tolerance, leaks beyond
                       -leak-tolerance exit non-zero)
  top                  live terminal dashboard: poll a serve instance
                       (-addr, optionally -run id) or tail a -stats-out file
                       (-f stats.jsonl); -once renders a single frame
  version              print the binary's build identity (go version, revision)

eval, synth, exp1, exp2 and advise also accept:
  -trace file          record a JSONL trace of the run (replay with 'chop explain')
  -metrics             print the counter/histogram registry after the run
  -prom file           write the registry in Prometheus text format
  -progress            print throttled live progress lines to stderr
  -stats-out file      append a JSONL stats sample (counter deltas, per-shard
                       search progress) every -stats-interval seconds; watch
                       live with 'chop top -f <file>'
  -stats-interval s    sampling cadence of -stats-out (default 1s)
  -cpuprofile file     write a CPU profile (flamegraph with 'go tool pprof')
  -memprofile file     write a heap profile taken after the run
  -blockprofile file   write a goroutine-blocking profile
  -workers n           search worker goroutines (1 = serial, 0 or negative =
                       all cores); parallel results are identical to serial
  -predict-cache n     memoize BAD predictions in an n-entry LRU cache
                       (0 disables, negative selects the default capacity)
  -checkpoint file     snapshot search progress to this file (removed on success)
  -resume              resume from a matching -checkpoint snapshot; mismatched
                       or missing snapshots fall back to a fresh start
  -inject spec         inject faults for chaos testing, e.g.
                       'seed=1,core.trial=error:@10,bad.predict=panic:0.01'
                       (sites: bad.predict, core.trial, serve.job, sink.write,
                       checkpoint.save; also via $CHOP_FAULT_INJECT)
`)
}

func tables() error {
	fmt.Println("Table 1: component library (3 micron)")
	fmt.Println(experiments.FormatTable1())
	fmt.Println("Table 2: MOSIS standard chip packages")
	fmt.Println(experiments.FormatTable2())
	return nil
}

func experiment(n int, args []string) error {
	fs := flag.NewFlagSet(fmt.Sprintf("exp%d", n), flag.ExitOnError)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	e := experiments.New(n)
	finish, err := of.attach(&e.Cfg)
	if err != nil {
		return err
	}
	err = func() error {
		fmt.Printf("Experiment %d: %s\n\n", n, e.Name)
		counts, err := e.PredictionCounts()
		if err != nil {
			return err
		}
		tn := 3
		if n == 2 {
			tn = 5
		}
		fmt.Printf("Table %d: statistics on the results from BAD\n", tn)
		fmt.Println(experiments.FormatCounts(counts))

		rows, err := e.Results()
		if err != nil {
			return err
		}
		fmt.Printf("Table %d: partitioning results\n", tn+1)
		fmt.Println(experiments.FormatResults(rows))
		return nil
	}()
	if ferr := finish(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

func graph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	name := fs.String("g", "ar", "benchmark graph: ar, ewf, fir, diffeq")
	taps := fs.Int("taps", 8, "tap count for the fir benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *dfg.Graph
	switch *name {
	case "ar":
		g = dfg.ARLatticeFilter(16)
	case "ewf":
		g = dfg.EllipticWaveFilter(16)
	case "fir":
		g = dfg.FIR(*taps, 16)
	case "diffeq":
		g = dfg.DiffEq(16)
	default:
		return fmt.Errorf("unknown graph %q", *name)
	}
	fmt.Printf("graph %s: %d nodes, %d edges\n", g.Name, len(g.Nodes), len(g.Edges))
	for op, cnt := range g.OpCounts() {
		fmt.Printf("  %-6s x%d\n", op, cnt)
	}
	fmt.Println("nodes:")
	for _, n := range g.Nodes {
		fmt.Printf("  %-10s %-7s width=%d\n", n.Name, n.Op, n.Width)
	}
	fmt.Println("edges:")
	for _, e := range g.Edges {
		fmt.Printf("  %s -> %s (%d bits)\n", g.Nodes[e.From].Name, g.Nodes[e.To].Name, e.Width)
	}
	return nil
}

func printSpec() error {
	data, err := json.MarshalIndent(spec.Example(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// obsFlags carries the run flags shared by every run-style command (eval,
// synth, exp1, exp2, advise): tracing, metrics exposition, live progress,
// the runtime/pprof profiling trio, and the execution knobs (search
// parallelism, prediction memoization).
type obsFlags struct {
	trace    *string
	metrics  *bool
	prom     *string
	progress *bool

	statsOut      *string
	statsInterval *float64

	cpuprofile   *string
	memprofile   *string
	blockprofile *string

	workers      *int
	predictCache *int

	checkpoint *string
	resume     *bool
	inject     *string

	traceparent *string

	fs *flag.FlagSet
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		fs:            fs,
		trace:         fs.String("trace", "", "record a JSONL trace of the run to this file"),
		metrics:       fs.Bool("metrics", false, "print the counter/histogram registry after the run"),
		prom:          fs.String("prom", "", "write Prometheus text-format metrics to this file after the run"),
		progress:      fs.Bool("progress", false, "print throttled live progress lines to stderr"),
		statsOut:      fs.String("stats-out", "", "append a JSONL stats sample (counters, deltas, shard table) to this file every -stats-interval"),
		statsInterval: fs.Float64("stats-interval", 1, "sampling cadence of -stats-out in seconds"),
		cpuprofile:    fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memprofile:    fs.String("memprofile", "", "write a heap profile to this file"),
		blockprofile:  fs.String("blockprofile", "", "write a goroutine-blocking profile to this file"),
		workers:       fs.Int("workers", 1, "search worker goroutines (1 = serial, 0 or negative = all cores); results are identical at any worker count"),
		predictCache:  fs.Int("predict-cache", 0, "memoize BAD predictions in an LRU cache of this many entries (0 disables, negative = default capacity)"),
		checkpoint:    fs.String("checkpoint", "", "snapshot search progress to this file; removed on success"),
		resume:        fs.Bool("resume", false, "resume from a matching -checkpoint snapshot (fresh start if absent or mismatched)"),
		inject:        fs.String("inject", "", "fault-injection spec, e.g. 'seed=1,core.trial=error:@10' (default: $"+resilience.EnvFaultInject+")"),
		traceparent:   fs.String("traceparent", "", "W3C traceparent of the calling span; this run's trace joins that distributed trace"),
	}
}

// explicitlySet reports whether the named flag appeared on the command
// line (flag.Visit walks only the set flags).
func (o *obsFlags) explicitlySet(name string) bool {
	set := false
	o.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// attach wires the requested tracer, metrics registry, progress sink and
// profilers into cfg and returns a finish function to call once the run is
// over: it prints the final progress line and the metrics dumps, flushes
// and closes the buffered trace file, and stops the profilers. Output files
// (-trace, -prom) are created eagerly so unwritable paths fail here, before
// the run; on error, attach closes whatever it had already opened.
func (o *obsFlags) attach(cfg *core.Config) (func() error, error) {
	// The execution knobs override a spec-file setting only when given on
	// the command line; otherwise whatever the spec put in cfg stands.
	if o.explicitlySet("workers") {
		if *o.workers <= 0 {
			cfg.Workers = -1 // Config: negative selects GOMAXPROCS
		} else {
			cfg.Workers = *o.workers
		}
	}
	if o.explicitlySet("predict-cache") {
		switch {
		case *o.predictCache > 0:
			cfg.PredictCache = bad.NewPredictCache(*o.predictCache)
		case *o.predictCache < 0:
			cfg.PredictCache = bad.NewPredictCache(0) // default capacity
		default:
			cfg.PredictCache = nil
		}
	}
	if *o.checkpoint != "" {
		cfg.CheckpointPath = *o.checkpoint
		cfg.Resume = *o.resume
	} else if *o.resume {
		return nil, fmt.Errorf("-resume requires -checkpoint")
	}
	// Fault injection: the flag wins, the environment variable is the
	// fallback (so CI chaos runs can inject without touching invocations).
	// Parse errors surface here, before anything is opened.
	if *o.inject != "" {
		inj, err := resilience.Parse(*o.inject)
		if err != nil {
			return nil, err
		}
		cfg.Inject = inj
	} else if inj, err := resilience.FromEnv(); err != nil {
		return nil, fmt.Errorf("$%s: %w", resilience.EnvFaultInject, err)
	} else if inj != nil {
		cfg.Inject = inj
	}
	var sinks []obs.Sink
	var file *obs.FileSink
	if *o.trace != "" {
		var err error
		file, err = obs.NewFileSink(*o.trace)
		if err != nil {
			return nil, err
		}
		file.Inject(cfg.Inject) // "sink.write" chaos site; nil is inert
		sinks = append(sinks, file)
	}
	var prog *obs.ProgressSink
	if *o.progress {
		prog = obs.NewProgressSink(os.Stderr, 0)
		sinks = append(sinks, prog)
	}
	// The tracer adopts a caller's trace context when -traceparent is
	// given, so a CLI run stitches under the caller's span in 'chop trace'.
	topts := obs.TracerOptions{}
	if *o.traceparent != "" {
		tc, err := obs.ParseTraceparent(*o.traceparent)
		if err != nil {
			if file != nil {
				file.Close()
			}
			return nil, fmt.Errorf("-traceparent: %w", err)
		}
		topts.Context = tc
	}
	cfg.Trace = obs.NewTracer(obs.NewTeeSink(sinks...), topts)
	var m *obs.Metrics
	if *o.metrics || *o.prom != "" || *o.statsOut != "" {
		m = obs.NewMetrics()
		cfg.Metrics = m
	}
	// The stats time series: a run-stats fold published by the search plus
	// a periodic snapshotter appending one JSONL record per interval. The
	// file is created eagerly like -prom, and the sampler starts now so the
	// series covers prediction as well as search.
	var statsFile *os.File
	var snap *obs.Snapshotter
	if *o.statsOut != "" {
		var err error
		statsFile, err = os.Create(*o.statsOut)
		if err != nil {
			if file != nil {
				file.Close()
			}
			return nil, err
		}
		cfg.Stats = obs.NewRunStats(o.fs.Name())
		// Phase accounting rides along with the stats series: the search
		// attaches the accounter to the run stats, so every sampled snapshot
		// (and the final one) carries the per-phase breakdown chop top and
		// chop explain -stats render.
		cfg.Phases = obs.NewPhaseAccounter()
		snap = obs.NewSnapshotter(obs.SnapshotterOptions{
			Metrics: m, Stats: cfg.Stats, Out: statsFile,
		})
		snap.Run(time.Duration(*o.statsInterval * float64(time.Second)))
	}
	// Create the -prom file now, not after the run: an unwritable path
	// must fail before minutes of search, and everything opened so far
	// must be closed on the way out.
	var promFile *os.File
	if *o.prom != "" {
		var err error
		promFile, err = os.Create(*o.prom)
		if err != nil {
			if file != nil {
				file.Close()
			}
			if statsFile != nil {
				snap.Stop()
				statsFile.Close()
			}
			return nil, err
		}
	}
	prof, err := obs.StartProfiler(obs.ProfileConfig{
		CPUFile:   *o.cpuprofile,
		MemFile:   *o.memprofile,
		BlockFile: *o.blockprofile,
	})
	if err != nil {
		if file != nil {
			file.Close()
		}
		if promFile != nil {
			promFile.Close()
		}
		if statsFile != nil {
			snap.Stop()
			statsFile.Close()
		}
		return nil, err
	}
	return func() error {
		var first error
		keep := func(err error) {
			if first == nil && err != nil {
				first = err
			}
		}
		if prog != nil {
			prog.Flush()
		}
		if snap != nil {
			// Stop takes one final sample, so the series always ends with
			// the run's terminal counters and shard table.
			snap.Stop()
			keep(snap.Err())
			if err := statsFile.Close(); err != nil {
				keep(fmt.Errorf("stats: %w", err))
			} else {
				fmt.Fprintf(os.Stderr, "stats written to %s (watch live with: chop top -f %s)\n",
					*o.statsOut, *o.statsOut)
			}
		}
		if *o.metrics {
			fmt.Println("\nmetrics:")
			fmt.Print(m.Text())
		}
		if promFile != nil {
			// Retried with truncate-and-rewrite semantics, so a transient
			// write failure cannot leave a half-written exposition behind.
			keep(resilience.Retry(context.Background(), resilience.RetryPolicy{
				Attempts: 3, BaseDelay: 5 * time.Millisecond, Seed: 1,
			}, func() error {
				if err := promFile.Truncate(0); err != nil {
					return err
				}
				if _, err := promFile.Seek(0, io.SeekStart); err != nil {
					return err
				}
				_, err := promFile.WriteString(m.PromText())
				return err
			}))
			keep(promFile.Close())
		}
		if file != nil {
			if err := file.Close(); err != nil {
				keep(fmt.Errorf("trace: %w", err))
			} else {
				fmt.Fprintf(os.Stderr, "trace written to %s (replay with: chop explain -f %s)\n",
					*o.trace, *o.trace)
			}
		}
		keep(prof.Stop())
		return first
	}, nil
}

func eval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	file := fs.String("f", "", "partitioning spec file (JSON)")
	gantt := fs.Bool("gantt", false, "print the task-schedule timeline of the fastest design")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("eval: -f spec.json required")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	prob, err := spec.Parse(data)
	if err != nil {
		return err
	}
	finish, err := of.attach(&prob.Config)
	if err != nil {
		return err
	}
	start := time.Now()
	res, preds, err := core.Run(prob.Partitioning, prob.Config, prob.Heuristic)
	if ferr := finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("partitions: %d on %d chips, heuristic %s, %s\n",
		prob.Partitioning.NumParts(), len(prob.Partitioning.Chips.Chips),
		prob.Heuristic, elapsed.Round(time.Millisecond))
	for i, r := range preds {
		fmt.Printf("  partition %d: %d predictions, %d kept, %d feasible\n",
			i+1, r.Total, len(r.Designs), r.Feasible)
	}
	fmt.Printf("trials: %d, feasible: %d\n", res.Trials, res.FeasibleTrials)
	if len(res.Best) == 0 {
		fmt.Println("NO feasible implementation found for this partitioning")
		return nil
	}
	fmt.Println("feasible non-inferior implementations:")
	for _, b := range res.Best {
		fmt.Printf("  interval=%d cycles  delay=%d cycles  clock=%.0f ns  (perf %.0f ns, delay %.0f ns)\n",
			b.IIMain, b.DelayMain, b.Clock.ML, b.PerfNS.ML, b.DelayNS.ML)
	}
	// Designer guidance, as in paper section 3.1.
	best := res.Best[0]
	fmt.Println("\nguideline for the fastest implementation:")
	for pi, d := range best.Choice {
		fmt.Printf("  partition %d: %s style, %d stage(s), modules %s,",
			pi+1, d.Style, d.Stages, d.ModuleSet.ID())
		for op, nfu := range d.FUs {
			fmt.Printf(" %d %s FU(s)", nfu, op)
		}
		fmt.Printf(", %d register bits, %d 1-bit muxes\n", d.RegBits, d.Mux1Bit)
	}
	for _, m := range best.Modules {
		fmt.Printf("  transfer %-14s wait=%d xfer=%d cycles, buffer=%d bits, bus=%d pins\n",
			m.Task.Name, m.Wait, m.Transfer, m.BufferBits, m.Pins)
	}
	if *gantt {
		fmt.Println("\ntask schedule:")
		fmt.Print(viz.Gantt(best, 64))
	}
	return nil
}

// advise starts an interactive advisor session over a spec file, reading
// commands from stdin (scriptable: pipe a command file in).
func advise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	file := fs.String("f", "", "partitioning spec file (JSON)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("advise: -f spec.json required")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	prob, err := spec.Parse(data)
	if err != nil {
		return err
	}
	finish, err := of.attach(&prob.Config)
	if err != nil {
		return err
	}
	err = func() error {
		sess, err := advisor.New(prob.Partitioning, prob.Config, prob.Heuristic)
		if err != nil {
			return err
		}
		fmt.Println("chop advisor — type 'help' for commands, 'quit' to exit")
		sc := bufio.NewScanner(os.Stdin)
		for {
			fmt.Print("chop> ")
			if !sc.Scan() {
				fmt.Println()
				return sc.Err()
			}
			line := sc.Text()
			if line == "quit" || line == "exit" {
				return nil
			}
			out, err := sess.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if out != "" {
				fmt.Println(out)
			}
		}
	}()
	if ferr := finish(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// explain replays a trace file recorded with -trace into a human-readable
// report: time breakdown per pipeline stage, BAD predictions per partition,
// and the trial rejection-reason histogram (overall and per chip).
func explain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	file := fs.String("f", "", "trace file (JSONL) recorded with -trace; '-' reads stdin")
	stats := fs.Bool("stats", false, "print the search-statistics report (per-run table, trial timeline) instead of the stage breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader
	switch *file {
	case "":
		return fmt.Errorf("explain: -f trace.jsonl required")
	case "-":
		r = os.Stdin
	default:
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := obs.Replay(r)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Print(rep.FormatStats())
	} else {
		fmt.Print(rep.Format())
	}
	return nil
}

// compile compiles a behavioral program written in the hlspec language and
// prints the resulting data-flow graph.
func compile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	file := fs.String("f", "", "behavioral program file")
	width := fs.Int("width", 16, "datapath bit width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("compile: -f prog.hls required")
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	g, err := hlspec.Compile(*file, string(src), *width)
	if err != nil {
		return err
	}
	fmt.Printf("compiled %s: %d nodes, %d edges, ops %v\n",
		g.Name, len(g.Nodes), len(g.Edges), g.OpCounts())
	for _, n := range g.Nodes {
		coef := ""
		if n.HasCoef {
			coef = fmt.Sprintf(" coef=%d", n.Coef)
		}
		fmt.Printf("  %-14s %-7s%s\n", n.Name, n.Op, coef)
	}
	return nil
}

// synth runs CHOP on a spec, synthesizes every partition of the fastest
// all-non-pipelined feasible design to RTL, co-simulates the multi-chip
// system against the behavioral golden model, and emits structural Verilog
// for each partition on stdout.
func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	file := fs.String("f", "", "partitioning spec file (JSON)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("synth: -f spec.json required")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	prob, err := spec.Parse(data)
	if err != nil {
		return err
	}
	finish, err := of.attach(&prob.Config)
	if err != nil {
		return err
	}
	res, _, err := core.Run(prob.Partitioning, prob.Config, prob.Heuristic)
	if ferr := finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	var chosen *core.GlobalDesign
	for i := range res.Best {
		ok := true
		for _, d := range res.Best[i].Choice {
			if d.Style != bad.NonPipelined {
				ok = false
				break
			}
		}
		if ok {
			chosen = &res.Best[i]
			break
		}
	}
	if chosen == nil {
		return fmt.Errorf("synth: no feasible all-non-pipelined global design")
	}
	fmt.Fprintf(os.Stderr, "synthesizing design: interval=%d delay=%d clock=%.0fns\n",
		chosen.IIMain, chosen.DelayMain, chosen.Clock.ML)

	// Functional sign-off on a handful of deterministic vectors.
	g := prob.Partitioning.Graph
	for seed := int64(1); seed <= 3; seed++ {
		inputs := map[string]int64{}
		for i, id := range g.Inputs() {
			inputs[g.Nodes[id].Name] = (seed*31 + int64(i)*17) % 97
		}
		if err := cosim.Verify(prob.Partitioning, prob.Config, chosen.Choice, inputs, nil); err != nil {
			return fmt.Errorf("synth: verification failed: %w", err)
		}
	}
	fmt.Fprintln(os.Stderr, "multi-chip co-simulation against the golden model: PASS")

	subs := prob.Partitioning.Subgraphs()
	for pi, d := range chosen.Choice {
		cyc := rtl.OpCyclesFor(d, prob.Config.Style.MultiCycle, prob.Config.Clocks.DatapathNS())
		nl, err := rtl.Bind(subs[pi], d, prob.Config.Lib, cyc)
		if err != nil {
			return fmt.Errorf("synth: partition %d: %w", pi+1, err)
		}
		fmt.Printf("// ---- partition %d of %d ----\n%s\n", pi+1, len(chosen.Choice), nl.Verilog(subs[pi]))
		// Self-checking testbench with golden-model vectors baked in.
		vectors := make([]map[string]int64, 2)
		for vi := range vectors {
			vectors[vi] = map[string]int64{}
			for i, id := range subs[pi].Inputs() {
				vectors[vi][subs[pi].Nodes[id].Name] = int64((vi+1)*7 + i*3)
			}
		}
		tb, err := sim.Testbench(subs[pi], nl, vectors, nil)
		if err != nil {
			return fmt.Errorf("synth: partition %d testbench: %w", pi+1, err)
		}
		fmt.Println(tb)
	}
	return nil
}

// accuracy prints the prediction-vs-binding comparison table.
func accuracy() error {
	rows, err := experiments.Accuracy()
	if err != nil {
		return err
	}
	fmt.Println("BAD prediction accuracy against bound RTL netlists (AR filter, experiment 2)")
	fmt.Println(experiments.FormatAccuracy(rows))
	return nil
}
