package main

import (
	"path/filepath"
	"strings"
	"testing"

	"chop/internal/benchkit"
)

// TestProfileCompareGateCLI drives the documented workflow end to end on
// the search workload: record a baseline, gate a clean re-run against it
// (must pass), then shrink the baseline's allocation budget so the re-run
// reads as a >= 10% allocs/op regression (must fail non-zero).
func TestProfileCompareGateCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures the search workload twice")
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline")
	if err := profile([]string{"-short", "-dir", base}); err != nil {
		t.Fatalf("recording baseline: %v", err)
	}
	if err := profile([]string{"-short", "-compare", base}); err != nil {
		t.Fatalf("clean re-run against own baseline failed: %v", err)
	}

	// Inject the regression by tightening the committed budget: a baseline
	// claiming 15% fewer allocs makes the unchanged code read as regressed.
	rep, err := benchkit.LoadProfile(base)
	if err != nil {
		t.Fatal(err)
	}
	rep.AllocsPerOp *= 0.85
	if err := rep.Save(filepath.Join(base, benchkit.ProfileFileName)); err != nil {
		t.Fatal(err)
	}
	err = profile([]string{"-short", "-compare", base})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("injected allocs/op regression not gated, got %v", err)
	}
}

func TestProfileUnknownWorkloadCLI(t *testing.T) {
	if err := profile([]string{"-workload", "no/such"}); err == nil {
		t.Fatal("want error for unknown workload")
	}
}
