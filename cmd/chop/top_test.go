package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chop/internal/obs"
	"chop/internal/serve"
)

func sampleSnapshot() obs.RunStatsSnapshot {
	return obs.RunStatsSnapshot{
		Label: "r-1", Started: true, ElapsedSec: 2,
		Trials: 50, Total: 100, Feasible: 10,
		TrialsPerSec: 25, ETASec: 2, Shards: 2, ShardsDone: 1,
		CacheHits: 3, CacheMisses: 1, CacheHitRate: 0.75,
		CheckpointSaves: 2, CheckpointLag: 1, CheckpointAgeSec: 0.5,
		ShardTable: []obs.ShardSnapshot{
			{Index: 0, Trials: 50, Total: 50, Feasible: 10, TrialsPerSec: 25, State: "done"},
			{Index: 1, Total: 50, State: "pending"},
		},
		SlowTrials: []obs.Exemplar{
			{DurUS: 1234, Shard: 0, II: 7, Feasible: false, Reason: "area"},
		},
	}
}

func TestRenderSnapshot(t *testing.T) {
	out := renderSnapshot(sampleSnapshot())
	for _, want := range []string{
		"50/100 trials", "10 feasible", "25 trials/s", "eta 2.0s",
		"shards 1/2 done", "[####################--------------------]  50%",
		"3 hits / 1 misses (75.0% hit)",
		"2 saves, lag 1 shard(s)",
		"done", "pending",
		"1234 µs", "rejected (area)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if out := renderSnapshot(obs.RunStatsSnapshot{}); !strings.Contains(out, "search not started") {
		t.Errorf("idle frame wrong:\n%s", out)
	}
}

func TestRenderServerFrame(t *testing.T) {
	st := serve.ServerStats{
		QueueDepth: 3, MaxConcurrent: 4, RunsInFlight: 2, Occupancy: 0.5,
		Runs:         map[string]int{"running": 2, "done": 5},
		Cache:        &serve.CacheView{Hits: 10, Misses: 5, HitRate: 2.0 / 3},
		Resilience:   map[string]int64{"checkpoint_saves": 3},
		HTTPRequests: 42,
		Active:       []obs.RunStatsSnapshot{sampleSnapshot()},
	}
	out := renderServerFrame("http://x:1", st)
	for _, want := range []string{
		"2/4 busy (50%)", "queue 3", "42 requests",
		"5 done, 2 running", "10 hits / 5 misses",
		"checkpoint_saves=3", "active searches (1)", "r-1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("server frame missing %q:\n%s", want, out)
		}
	}
	st.Active = nil
	if out := renderServerFrame("http://x:1", st); !strings.Contains(out, "no active searches") {
		t.Errorf("idle server frame wrong:\n%s", out)
	}
}

func TestRenderRecordFrame(t *testing.T) {
	sn := sampleSnapshot()
	rec := obs.StatsRecord{
		T: 1700000000000, Seq: 3, IntervalSec: 0.5,
		CounterDeltas: map[string]int64{"core.trials": 50},
		Run:           &sn,
	}
	out := renderRecordFrame("stats.jsonl", rec, 3)
	for _, want := range []string{"sample 3 (3 on file)", "core.trials", "100/s", "50/100 trials"} {
		if !strings.Contains(out, want) {
			t.Errorf("record frame missing %q:\n%s", want, out)
		}
	}
}

func TestLastStatsRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.jsonl")
	content := `{"t":1,"seq":1}
{"t":2,"seq":2,"counterDeltas":{"core.trials":7}}
{"t":3,"seq":3,"trunc` // trailing partial line: being written right now
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, n, err := lastStatsRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || rec.Seq != 2 || rec.CounterDeltas["core.trials"] != 7 {
		t.Fatalf("last record = %+v (n=%d), want seq 2 of 2", rec, n)
	}
}

func TestBarAndETA(t *testing.T) {
	if got := bar(5, 10, 10); got != "[#####-----]  50%" {
		t.Fatalf("bar = %q", got)
	}
	if got := bar(20, 10, 4); got != "[####] 100%" {
		t.Fatalf("overfull bar = %q", got)
	}
	if got := bar(1, 0, 4); got != "" {
		t.Fatalf("bar without total = %q", got)
	}
	for secs, want := range map[float64]string{30: "30.0s", 90: "1.5m", 7200: "2.0h"} {
		if got := fmtETA(secs); got != want {
			t.Fatalf("fmtETA(%v) = %q, want %q", secs, got, want)
		}
	}
}
