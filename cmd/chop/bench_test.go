package main

import (
	"path/filepath"
	"strings"
	"testing"

	"chop/internal/benchkit"
)

func writeReport(t *testing.T, path string, ns map[string]float64) {
	t.Helper()
	r := &benchkit.Report{Schema: benchkit.SchemaVersion}
	for name, v := range ns {
		r.Workloads = append(r.Workloads, benchkit.Result{Name: name, Iters: 1, NsPerOp: v})
	}
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestBenchCompareGate drives the CLI exactly as documented —
// `chop bench -compare old.json new.json -tolerance 10` — and checks the
// command fails (non-zero exit via main's error path) on an injected
// regression at/above tolerance, and passes below it.
func TestBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeReport(t, oldP, map[string]float64{"exp1/results": 100e6, "graph/ar/p2": 10e6})
	writeReport(t, newP, map[string]float64{"exp1/results": 130e6, "graph/ar/p2": 10.2e6})

	err := bench([]string{"-compare", oldP, newP, "-tolerance", "10"})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("30%% slowdown at 10%% tolerance must fail, got %v", err)
	}
	// A tolerance above the injected slowdown passes.
	if err := bench([]string{"-compare", oldP, newP, "-tolerance", "40"}); err != nil {
		t.Fatalf("40%% tolerance should pass: %v", err)
	}
	// Flag order from before the positionals works too.
	err = bench([]string{"-tolerance", "10", "-compare", oldP, newP})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("flag-first order must also gate, got %v", err)
	}
}

func TestBenchCompareMissingArgs(t *testing.T) {
	if err := bench([]string{"-compare", "only-old.json"}); err == nil {
		t.Fatal("want usage error without the new report path")
	}
}

func TestBenchCompareDisjointReports(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeReport(t, oldP, map[string]float64{"a": 1})
	writeReport(t, newP, map[string]float64{"b": 1})
	if err := bench([]string{"-compare", oldP, newP}); err == nil {
		t.Fatal("want error when reports share no workloads")
	}
}
