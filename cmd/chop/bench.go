package main

import (
	"flag"
	"fmt"
	"os"

	"chop/internal/benchkit"
)

// bench runs the calibrated performance harness (internal/benchkit) or, in
// -compare mode, gates a new BENCH report against a baseline:
//
//	chop bench -short -json                        # measure, write BENCH_<n>.json
//	chop bench -compare old.json new.json -tolerance 10
//
// -compare exits non-zero when any workload's ns/op regressed by at least
// the tolerance, which is what CI and the Makefile hook into.
func bench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	short := fs.Bool("short", false, "use the small per-workload time budget (CI-friendly)")
	jsonOut := fs.Bool("json", false, "write a schema-versioned BENCH_<n>.json into -dir")
	dir := fs.String("dir", ".", "directory for -json output and BENCH_<n> numbering")
	out := fs.String("o", "", "write the report to this exact path instead of BENCH_<n>.json")
	runFilter := fs.String("run", "", "only run workloads whose name contains this substring")
	compareOld := fs.String("compare", "", "baseline BENCH json; compares against the positional new BENCH json instead of measuring")
	tolerance := fs.Float64("tolerance", 10, "regression tolerance in percent for -compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compareOld != "" {
		rest := fs.Args()
		if len(rest) < 1 {
			return fmt.Errorf("bench: -compare needs the new report: chop bench -compare old.json new.json")
		}
		newPath := rest[0]
		// Allow flags after the positional file (chop bench -compare
		// old.json new.json -tolerance 10): re-parse the remainder.
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		return benchCompare(*compareOld, newPath, *tolerance)
	}

	rep, err := benchkit.Run(benchkit.Options{
		Short:  *short,
		Filter: *runFilter,
		Log:    os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Print(benchkit.FormatReport(rep))

	path := *out
	if path == "" && *jsonOut {
		if path, err = benchkit.NextPath(*dir); err != nil {
			return err
		}
	}
	if path != "" {
		if err := rep.Save(path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s (gate with: chop bench -compare %s <new.json>)\n",
			path, path)
	}
	return nil
}

func benchCompare(oldPath, newPath string, tolerance float64) error {
	old, err := benchkit.Load(oldPath)
	if err != nil {
		return err
	}
	cur, err := benchkit.Load(newPath)
	if err != nil {
		return err
	}
	deltas, regressed := benchkit.Compare(old, cur, tolerance)
	if len(deltas) == 0 {
		return fmt.Errorf("bench: no common workloads between %s and %s", oldPath, newPath)
	}
	fmt.Print(benchkit.FormatDeltas(deltas))
	if regressed {
		return fmt.Errorf("bench: performance regression beyond %.0f%% tolerance", tolerance)
	}
	fmt.Printf("no regression beyond %.0f%% tolerance across %d workloads\n", tolerance, len(deltas))
	return nil
}
