package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chop/internal/benchkit"
)

// bench runs the calibrated performance harness (internal/benchkit) or, in
// -compare mode, gates a new BENCH report against a baseline:
//
//	chop bench -short -json                        # measure, write BENCH_<n>.json
//	chop bench -compare old.json new.json -tolerance 10 -alloc-tolerance 5
//
// -compare exits non-zero when any workload's ns/op regressed by at least
// the tolerance (or its allocs/op by -alloc-tolerance, when positive),
// which is what CI and the Makefile hook into. Reports record the build
// environment they were measured on; -compare warns when baseline and
// current report come from different hardware or Go versions.
func bench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	short := fs.Bool("short", false, "use the small per-workload time budget (CI-friendly)")
	jsonOut := fs.Bool("json", false, "write a schema-versioned BENCH_<n>.json into -dir")
	dir := fs.String("dir", ".", "directory for -json output and BENCH_<n> numbering")
	out := fs.String("o", "", "write the report to this exact path instead of BENCH_<n>.json")
	runFilter := fs.String("run", "", "only run workloads whose name contains this substring")
	compareOld := fs.String("compare", "", "baseline BENCH json; compares against the positional new BENCH json instead of measuring")
	tolerance := fs.Float64("tolerance", 10, "ns/op regression tolerance in percent for -compare")
	allocTolerance := fs.Float64("alloc-tolerance", 0, "allocs/op regression tolerance in percent for -compare (0 disables)")
	statsGate := fs.Float64("stats-gate", 0, "fail if the search/stats workloads exceed their search/stress partners' ns/op by more than this percent (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compareOld != "" {
		rest := fs.Args()
		if len(rest) < 1 {
			return fmt.Errorf("bench: -compare needs the new report: chop bench -compare old.json new.json")
		}
		newPath := rest[0]
		// Allow flags after the positional file (chop bench -compare
		// old.json new.json -tolerance 10): re-parse the remainder.
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		return benchCompare(*compareOld, newPath, benchkit.Tolerances{
			TimePct:  *tolerance,
			AllocPct: *allocTolerance,
		})
	}

	rep, err := benchkit.Run(benchkit.Options{
		Short:  *short,
		Filter: *runFilter,
		Log:    os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Print(benchkit.FormatReport(rep))

	path := *out
	if path == "" && *jsonOut {
		if path, err = benchkit.NextPath(*dir); err != nil {
			return err
		}
	}
	if path != "" {
		if err := rep.Save(path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s (gate with: chop bench -compare %s <new.json>)\n",
			path, path)
	}
	if *statsGate > 0 {
		return gateStatsOverhead(rep, *statsGate)
	}
	return nil
}

// gateStatsOverhead enforces the telemetry-plane overhead budget inside one
// report: each search/stats workload must stay within `pct` percent of its
// search/stress partner at the same worker count. This is the acceptance
// gate for live run stats — publication is one or two atomic adds per
// trial, so the measured tax should sit in the noise.
func gateStatsOverhead(rep *benchkit.Report, pct float64) error {
	nsPerOp := make(map[string]float64, len(rep.Workloads))
	for _, w := range rep.Workloads {
		nsPerOp[w.Name] = w.NsPerOp
	}
	checked := 0
	var failures []string
	for _, workers := range []string{"w1", "w4"} {
		stats, ok1 := nsPerOp["search/stats/"+workers]
		stress, ok2 := nsPerOp["search/stress/"+workers]
		if !ok1 || !ok2 || stress <= 0 {
			continue
		}
		checked++
		overhead := (stats/stress - 1) * 100
		fmt.Printf("stats overhead %s: %+.1f%% (stats %.2f ms/op vs stress %.2f ms/op)\n",
			workers, overhead, stats/1e6, stress/1e6)
		if overhead > pct {
			failures = append(failures, fmt.Sprintf("%s %+.1f%%", workers, overhead))
		}
	}
	if checked == 0 {
		return fmt.Errorf("bench: -stats-gate needs the search/stats and search/stress workloads in the run (check -run filter)")
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: telemetry overhead beyond %.0f%% budget: %s",
			pct, strings.Join(failures, ", "))
	}
	fmt.Printf("telemetry overhead within %.0f%% budget across %d worker counts\n", pct, checked)
	return nil
}

func benchCompare(oldPath, newPath string, tol benchkit.Tolerances) error {
	old, err := benchkit.Load(oldPath)
	if err != nil {
		return err
	}
	cur, err := benchkit.Load(newPath)
	if err != nil {
		return err
	}
	// Different hardware makes the time gate unreliable; say so instead of
	// silently comparing apples against oranges.
	if mm := old.Build.Mismatches(cur.Build); len(mm) > 0 {
		for _, m := range mm {
			fmt.Fprintf(os.Stderr, "bench: warning: baseline environment differs: %s\n", m)
		}
	}
	deltas, regressed := benchkit.CompareWith(old, cur, tol)
	if len(deltas) == 0 {
		return fmt.Errorf("bench: no common workloads between %s and %s", oldPath, newPath)
	}
	fmt.Print(benchkit.FormatDeltas(deltas))
	if regressed {
		return fmt.Errorf("bench: performance regression beyond tolerance (time %.0f%%, allocs %.0f%%)",
			tol.TimePct, tol.AllocPct)
	}
	fmt.Printf("no regression beyond tolerance across %d workloads\n", len(deltas))
	return nil
}
