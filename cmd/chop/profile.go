package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chop/internal/benchkit"
)

// profile runs one benchkit workload serially under CPU + heap profiling
// with per-phase time and allocation attribution, and optionally gates the
// measurement against a committed baseline:
//
//	chop profile -dir profiles/run1                 # record + attribute
//	chop profile -compare profiles/baseline         # diff, exit 1 on regression
//
// The attribution table breaks each search trial into the pipeline's named
// phases (predict, cache-lookup, schedule, xfer, integrate, checkpoint);
// the saved cpu.pprof carries matching pprof labels (workload, run, phase,
// shard) so `go tool pprof -tagfocus` slices along the same axes.
func profile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	workload := fs.String("workload", benchkit.DefaultProfileWorkload,
		"workload to profile (must have a profiled variant; see error output for the list)")
	dir := fs.String("dir", "", "directory for cpu.pprof, heap.pprof and profile.json (empty: measure only)")
	short := fs.Bool("short", false, "use the small measurement budget (CI-friendly)")
	compare := fs.String("compare", "", "baseline profile.json (or its directory); exits non-zero on regression")
	allocTol := fs.Float64("alloc-tolerance", 10, "allocs/op regression tolerance in percent for -compare (0 disables)")
	timeTol := fs.Float64("time-tolerance", 0, "ns/op regression tolerance in percent for -compare (0 disables; profiled wall time is noisy)")
	jsonOut := fs.Bool("json", false, "print the profile report as JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := benchkit.RunProfile(benchkit.ProfileOptions{
		Workload: *workload,
		Dir:      *dir,
		Short:    *short,
		Log:      os.Stderr,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(benchkit.FormatProfile(rep))
	}
	if *dir != "" {
		fmt.Fprintf(os.Stderr, "profiles written to %s (inspect with: go tool pprof %s/cpu.pprof; gate with: chop profile -compare %s)\n",
			*dir, *dir, *dir)
	}

	if *compare == "" {
		return nil
	}
	base, err := benchkit.LoadProfile(*compare)
	if err != nil {
		return err
	}
	if mm := base.Build.Mismatches(rep.Build); len(mm) > 0 {
		for _, m := range mm {
			fmt.Fprintf(os.Stderr, "profile: warning: baseline environment differs: %s\n", m)
		}
	}
	delta, regressed, err := benchkit.CompareProfiles(base, rep, benchkit.Tolerances{
		TimePct:  *timeTol,
		AllocPct: *allocTol,
	})
	if err != nil {
		return err
	}
	fmt.Println(benchkit.FormatProfileDelta(delta))
	if regressed {
		return fmt.Errorf("profile: regression against baseline %s", *compare)
	}
	fmt.Printf("no regression against baseline %s\n", *compare)
	return nil
}
