// autopart contrasts automatic partitioning strategies in front of CHOP's
// feasibility analysis: the Kernighan-Lin min-cut baseline (paper reference
// [4]) against level-ordered equal-size splitting. The paper's argument
// (section 1.1) is that min-cut alone is the wrong objective at the
// behavioral level — KL ignores data-flow direction (its cuts can create
// mutual dependencies CHOP must reject) and cut size does not determine pin
// or area feasibility; CHOP's prediction-driven check is the arbiter.
package main

import (
	"fmt"
	"log"

	chop "chop"
)

func main() {
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 20000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}

	for _, bench := range []struct {
		name string
		g    *chop.Graph
	}{
		{"ar-lattice-filter", chop.ARLatticeFilter(16)},
		{"fir-16", chop.FIR(16, 16)},
		{"elliptic-wave-filter", chop.EllipticWaveFilter(16)},
	} {
		fmt.Printf("== %s ==\n", bench.name)
		g := bench.g

		klParts := chop.KLKWay(g, 2, 10)
		lvParts := chop.LevelPartitions(g, 2)

		klCut := cutOf(g, klParts)
		lvCut := cutOf(g, lvParts)
		fmt.Printf("KL min-cut bisection:   cut=%4d bits, acyclic=%v\n",
			klCut, chop.KLValidateAcyclic(g, klParts))
		fmt.Printf("level equal-size split: cut=%4d bits, acyclic=%v\n",
			lvCut, chop.KLValidateAcyclic(g, lvParts))

		for _, cand := range []struct {
			label string
			parts [][]int
		}{
			{"KL", klParts},
			{"level", lvParts},
		} {
			p := &chop.Partitioning{
				Graph:    g,
				Parts:    cand.parts,
				PartChip: []int{0, 1},
				Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
			}
			if err := p.Validate(); err != nil {
				fmt.Printf("%-6s rejected by CHOP: %v\n", cand.label, err)
				continue
			}
			res, _, err := chop.Run(p, cfg, chop.Iterative)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Best) == 0 {
				fmt.Printf("%-6s admissible but infeasible under the constraints\n", cand.label)
				continue
			}
			b := res.Best[0]
			fmt.Printf("%-6s feasible: II=%d cycles, delay=%d cycles\n",
				cand.label, b.IIMain, b.DelayMain)
		}
		fmt.Println()
	}
}

// cutOf measures the inter-partition traffic of a 2-way partitioning.
func cutOf(g *chop.Graph, parts [][]int) int {
	asn := map[int]int{}
	for pi, set := range parts {
		for _, id := range set {
			asn[id] = pi % 2
		}
	}
	cut := 0
	for _, e := range g.Edges {
		sf, okF := asn[e.From]
		st, okT := asn[e.To]
		if okF && okT && sf != st {
			cut += e.Width
		}
	}
	return cut
}
