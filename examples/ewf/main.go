// ewf partitions the fifth-order elliptic wave filter — an add-dominated
// benchmark with a long dependence chain — and walks the paper's section
// 2.7 modification loop: when a tentative partitioning is infeasible, the
// designer modifies the constraints or the target chip set based on CHOP's
// feedback, and re-checks in real time.
package main

import (
	"fmt"
	"log"

	chop "chop"
)

func main() {
	g := chop.EllipticWaveFilter(16)
	fmt.Printf("elliptic wave filter: %d nodes (%v)\n", len(g.Nodes), opMix(g))

	// Multi-cycle style, all clocks at 300 ns (experiment-2 style).
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: chop.Constraints{
			// A deliberately aggressive performance target.
			Perf:  chop.Constraint{Bound: 6000, MinProb: 1},
			Delay: chop.Constraint{Bound: 40000, MinProb: 0.8},
		},
	}

	try := func(parts int, pkgIdx int, perfNS float64) (bool, int) {
		c := cfg
		c.Constraints.Perf.Bound = perfNS
		p := &chop.Partitioning{
			Graph:    g,
			Parts:    chop.LevelPartitions(g, parts),
			PartChip: seq(parts),
			Chips:    chop.NewChipSet(parts, chop.MOSISPackages()[pkgIdx], 4),
		}
		res, _, err := chop.Run(p, c, chop.Iterative)
		if err != nil {
			log.Fatal(err)
		}
		pkg := chop.MOSISPackages()[pkgIdx]
		if len(res.Best) == 0 {
			fmt.Printf("  %d partition(s) on %s, perf<=%.0fns: infeasible\n",
				parts, pkg.Name, perfNS)
			return false, 0
		}
		b := res.Best[0]
		fmt.Printf("  %d partition(s) on %s, perf<=%.0fns: II=%d cycles (%.0f ns), delay=%d\n",
			parts, pkg.Name, perfNS, b.IIMain, b.PerfNS.ML, b.DelayMain)
		return true, b.IIMain
	}

	fmt.Println("step 1: aggressive 6 us target on a single chip")
	ok, _ := try(1, 1, 6000)

	if !ok {
		fmt.Println("step 2: modification — split across two chips (behavioral partitions)")
		ok, _ = try(2, 1, 6000)
	}
	if !ok {
		fmt.Println("step 3: modification — three chips")
		ok, _ = try(3, 1, 6000)
	}
	if !ok {
		fmt.Println("step 4: modification — relax the performance constraint (paper 2.7: Constraints)")
		for perf := 8000.0; perf <= 20000; perf += 4000 {
			if ok, _ = try(3, 1, perf); ok {
				break
			}
		}
	}
	if ok {
		fmt.Println("feasible configuration found; the EWF chain limits gains from chips,")
		fmt.Println("illustrating that partitioning helps parallel graphs far more than serial ones.")
	}

	// Contrast: the wide FIR benchmark profits from partitioning directly —
	// the feasibility frontier moves with the chip count.
	fmt.Println("\ncontrast: 16-tap FIR (wide, shallow) feasibility frontier")
	fir := chop.FIR(16, 16)
	for _, perf := range []float64{8000, 12000} {
		fmt.Printf("  performance bound %.0f ns:\n", perf)
		for parts := 1; parts <= 3; parts++ {
			p := &chop.Partitioning{
				Graph:    fir,
				Parts:    chop.LevelPartitions(fir, parts),
				PartChip: seq(parts),
				Chips:    chop.NewChipSet(parts, chop.MOSISPackages()[1], 4),
			}
			c := cfg
			c.Constraints.Perf.Bound = perf
			res, _, err := chop.Run(p, c, chop.Iterative)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Best) == 0 {
				fmt.Printf("    FIR on %d chip(s): infeasible\n", parts)
				continue
			}
			fmt.Printf("    FIR on %d chip(s): II=%d cycles, delay=%d\n",
				parts, res.Best[0].IIMain, res.Best[0].DelayMain)
		}
	}
	fmt.Println("  (the tight target is only reachable with three chips; relaxing it")
	fmt.Println("  admits two — the crossover CHOP exposes to the designer)")
}

func opMix(g *chop.Graph) map[chop.Op]int { return g.OpCounts() }

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
