// memsys demonstrates the memory-system inputs of CHOP (paper section 2.2
// group 4 and section 2.7 "Memory blocks"): a small stream-processing
// behavior that reads coefficients from a memory block, evaluated under
// three memory assignments — on the compute chip, on the other chip, and as
// an off-the-shelf memory chip outside the set. Moving the block changes
// pin reservations, chip areas and therefore feasibility, which is exactly
// the interleaved memory/behavior partitioning loop the paper describes.
package main

import (
	"fmt"
	"log"

	chop "chop"
)

// buildStream returns a 2-tap adaptive filter slice: two coefficient reads,
// two multiplies, an add chain, and a state write-back.
func buildStream() *chop.Graph {
	g := chop.NewGraph("stream")
	in := g.AddNode("in", chop.OpInput, 16)
	prev := g.AddNode("prev", chop.OpInput, 16)
	c0 := g.AddNode("c0", chop.OpMemRd, 16)
	g.Nodes[c0].Mem = "coeff"
	c1 := g.AddNode("c1", chop.OpMemRd, 16)
	g.Nodes[c1].Mem = "coeff"
	m0 := g.AddNode("m0", chop.OpMul, 16)
	m1 := g.AddNode("m1", chop.OpMul, 16)
	g.MustConnect(in, m0)
	g.MustConnect(c0, m0)
	g.MustConnect(prev, m1)
	g.MustConnect(c1, m1)
	s := g.AddNode("sum", chop.OpAdd, 16)
	g.MustConnect(m0, s)
	g.MustConnect(m1, s)
	wb := g.AddNode("wb", chop.OpMemWr, 16)
	g.Nodes[wb].Mem = "coeff"
	g.MustConnect(s, wb)
	out := g.AddNode("out", chop.OpOutput, 16)
	g.MustConnect(s, out)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	g := buildStream()
	coeff := chop.MemBlock{
		Name: "coeff", Words: 256, Width: 16, Ports: 1,
		AccessTime: 150, Area: 12000, ControlPins: 2,
	}
	offShelf := coeff
	offShelf.OffChip = true
	offShelf.Area = 0

	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 20000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}

	parts := chop.LevelPartitions(g, 2)
	scenarios := []struct {
		label string
		mem   chop.MemSystem
	}{
		{"coeff block on chip 1 (with the multipliers)",
			chop.MemSystem{Blocks: []chop.MemBlock{coeff}, Assign: chop.MemAssignment{"coeff": 0}}},
		{"coeff block on chip 2 (away from the multipliers)",
			chop.MemSystem{Blocks: []chop.MemBlock{coeff}, Assign: chop.MemAssignment{"coeff": 1}}},
		{"off-the-shelf memory chip outside the set",
			chop.MemSystem{Blocks: []chop.MemBlock{offShelf}}},
	}
	for _, sc := range scenarios {
		p := &chop.Partitioning{
			Graph:    g,
			Parts:    parts,
			PartChip: []int{0, 1},
			Chips:    chop.NewChipSet(2, chop.MOSISPackages()[0], 4),
			Mem:      sc.mem,
		}
		res, _, err := chop.Run(p, cfg, chop.Iterative)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s ", sc.label)
		if len(res.Best) == 0 {
			fmt.Println("infeasible")
			continue
		}
		b := res.Best[0]
		fmt.Printf("II=%-3d delay=%-3d pins=%v area=[%.0f %.0f]\n",
			b.IIMain, b.DelayMain, b.ChipPins, b.ChipArea[0].ML, b.ChipArea[1].ML)
	}
	fmt.Println("\nMoving the memory changes pin reservations and chip areas — the")
	fmt.Println("interleaved memory/behavior partitioning loop of paper section 2.7.")
}
