// fullflow drives the complete tool chain on a behavioral program written
// in the textual specification language: compile (with loop unrolling, paper
// section 2.3) -> partition -> CHOP feasibility search -> RTL synthesis of
// the chosen partition implementations (paper section 5's "immediate task")
// -> cycle-accurate verification of each netlist against the behavioral
// golden model.
package main

import (
	"fmt"
	"log"

	chop "chop"
)

// A 4-tap correlator with a post-scaling loop, written in the hlspec
// language. The inner loop has a determinate trip count and is unrolled by
// the compiler.
const program = `
	input x0, x1, x2, x3
	acc = x0 * 11 + x1 * 12
	acc = acc + x2 * 13 + x3 * 14
	# refine the estimate twice: acc = acc*2 - x0
	loop 2 {
		acc = acc * 2 - x0
	}
	output acc
`

func main() {
	g, err := chop.CompileHLS("correlator", program, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d nodes, ops %v\n", g.Name, len(g.Nodes), g.OpCounts())

	// Partition onto two 84-pin chips and search.
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 2),
		PartChip: []int{0, 1},
		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
	}
	cfg := chop.Config{
		Lib:    chop.ExtendedLibrary(), // the program uses subtraction
		Style:  chop.Style{MultiCycle: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 20000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}
	res, _, err := chop.Run(p, cfg, chop.Iterative)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Best) == 0 {
		log.Fatal("no feasible implementation")
	}
	best := res.Best[0]
	fmt.Printf("feasible: interval=%d cycles, delay=%d cycles, clock=%.0f ns\n",
		best.IIMain, best.DelayMain, best.Clock.ML)

	// Synthesize each partition's chosen design down to RTL and verify it
	// against the behavioral golden model on concrete vectors.
	subgraphs := p.Subgraphs()
	for pi, d := range best.Choice {
		sub := subgraphs[pi]
		cyc := chop.OpCyclesFor(d, cfg.Style.MultiCycle, cfg.Clocks.DatapathNS())
		nl, err := chop.Bind(sub, d, cfg.Lib, cyc)
		if err != nil {
			log.Fatalf("partition %d: %v", pi+1, err)
		}
		fmt.Printf("partition %d netlist: %d FUs, %d register bits, %d mux cells, %d control steps\n",
			pi+1, len(nl.FUs), nl.RegisterBits(), nl.Mux1Bit(), len(nl.Control))

		// The partition subgraph has no primary I/O of its own (values
		// arrive from other partitions); functional verification runs on
		// the whole behavior below.
		_ = nl
	}

	// Verify the whole behavior as a single netlist (the 1-partition
	// implementation): compile-level semantics must survive synthesis.
	whole := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 1),
		PartChip: []int{0},
		Chips:    chop.NewChipSet(1, chop.MOSISPackages()[1], 4),
	}
	preds, err := chop.PredictPartitions(whole, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(preds[0].Designs) == 0 {
		log.Fatal("no single-chip design to verify")
	}
	var done int
	for _, d := range preds[0].Designs {
		if d.Style != chop.NonPipelined {
			continue
		}
		cyc := chop.OpCyclesFor(d, cfg.Style.MultiCycle, cfg.Clocks.DatapathNS())
		nl, err := chop.Bind(g, d, cfg.Lib, cyc)
		if err != nil {
			log.Fatal(err)
		}
		for _, vec := range []map[string]int64{
			{"x0": 1, "x1": 2, "x2": 3, "x3": 4},
			{"x0": -7, "x1": 100, "x2": 0, "x3": 55},
		} {
			if err := chop.VerifyNetlist(g, nl, vec, nil); err != nil {
				log.Fatalf("verification FAILED: %v", err)
			}
		}
		done++
	}
	fmt.Printf("verified %d synthesized implementation(s) against the golden model: PASS\n", done)

	// And show the source-level semantics directly.
	out, err := chop.Evaluate(g, map[string]int64{"x0": 1, "x1": 2, "x2": 3, "x3": 4}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden model outputs: %v\n", out)
}
