// Quickstart: partition the AR lattice filter onto two 84-pin MOSIS chips
// and ask CHOP whether the partitioning is feasible under the paper's
// experiment-1 constraints.
package main

import (
	"fmt"
	"log"

	chop "chop"
)

func main() {
	// The behavioral specification: the paper's AR lattice filter
	// benchmark (16 multiplications, 12 additions).
	g := chop.ARLatticeFilter(16)

	// A tentative partitioning: a horizontal cut into two halves, each on
	// its own chip.
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 2),
		PartChip: []int{0, 1},
		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
	}

	// Experiment-1 configuration: Table-1 library, 300 ns main clock with
	// a 10x datapath clock, single-cycle operations, 30 us performance and
	// delay bounds. Feasibility criteria: certainty on performance and
	// area, 80% confidence on system delay.
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}

	res, preds, err := chop.Run(p, cfg, chop.Iterative)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range preds {
		fmt.Printf("partition %d: %d predicted implementations, %d feasible\n",
			i+1, r.Total, r.Feasible)
	}
	fmt.Printf("searched %d combinations, %d feasible\n", res.Trials, res.FeasibleTrials)
	if len(res.Best) == 0 {
		fmt.Println("no feasible implementation — relax constraints or repartition")
		return
	}
	for _, b := range res.Best {
		fmt.Printf("feasible: interval %d cycles (%.0f ns), delay %d cycles (%.0f ns), clock %.0f ns\n",
			b.IIMain, b.PerfNS.ML, b.DelayMain, b.DelayNS.ML, b.Clock.ML)
	}
}
