// arfilter replays the paper's designer session (section 3): starting from
// a feasible single-chip implementation of the AR lattice filter, explore
// faster designs using more chips, compare the two chip packages and both
// search heuristics, and print the synthesis guideline CHOP outputs for the
// chosen implementation (paper section 3.1).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	chop "chop"
)

func main() {
	g := chop.ARLatticeFilter(16)
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}

	fmt.Println("== searching for the fastest feasible design, experiment-1 style ==")
	var chosen *chop.GlobalDesign
	for _, setup := range []struct {
		parts, pkgIdx int
		label         string
	}{
		{1, 1, "1 partition, 84-pin"},
		{2, 1, "2 partitions, 84-pin"},
		{2, 0, "2 partitions, 64-pin"},
		{3, 1, "3 partitions, 84-pin"},
	} {
		p := &chop.Partitioning{
			Graph:    g,
			Parts:    chop.LevelPartitions(g, setup.parts),
			PartChip: seq(setup.parts),
			Chips:    chop.NewChipSet(setup.parts, chop.MOSISPackages()[setup.pkgIdx], 4),
		}
		for _, h := range []chop.Heuristic{chop.Enumeration, chop.Iterative} {
			start := time.Now()
			res, _, err := chop.Run(p, cfg, h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-24s H=%s %8s trials=%-4d feasible=%-3d",
				setup.label, h, time.Since(start).Round(time.Microsecond), res.Trials, res.FeasibleTrials)
			if len(res.Best) == 0 {
				fmt.Println(" -> infeasible")
				continue
			}
			for _, b := range res.Best {
				fmt.Printf("  [II=%d delay=%d clk=%.0fns]", b.IIMain, b.DelayMain, b.Clock.ML)
			}
			fmt.Println()
			if b := res.Best[0]; chosen == nil || b.IIMain < chosen.IIMain {
				bb := b
				chosen = &bb
			}
		}
	}

	if chosen == nil {
		log.Fatal("no feasible design anywhere")
	}
	fmt.Printf("\n== guideline for the fastest design (II=%d, delay=%d) ==\n",
		chosen.IIMain, chosen.DelayMain)
	for pi, d := range chosen.Choice {
		fmt.Printf("Partition %d:\n", pi+1)
		fmt.Printf("  - a %s design style with %d stage(s)\n", d.Style, d.Stages)
		fmt.Printf("  - module library of %s\n", d.ModuleSet.ID())
		var ops []string
		for op := range d.FUs {
			ops = append(ops, string(op))
		}
		sort.Strings(ops)
		for _, op := range ops {
			fmt.Printf("  - %d %s unit(s)\n", d.FUs[chop.Op(op)], op)
		}
		fmt.Printf("  - %d bits of registers for the data path\n", d.RegBits)
		fmt.Printf("  - %d 1-bit 2-to-1 multiplexers\n", d.Mux1Bit)
	}
	fmt.Println("Data transfer modules:")
	for _, m := range chosen.Modules {
		fmt.Printf("  %-16s wait=%-3d transfer=%-3d buffer=%d bits, bus=%d pins\n",
			m.Task.Name, m.Wait, m.Transfer, m.BufferBits, m.Pins)
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
