// Trace: run CHOP on the AR lattice filter with the observability layer
// enabled — a JSONL tracer capturing every pipeline stage and trial, plus a
// metrics registry — then replay the trace into the same explanation report
// that `chop explain` prints.
package main

import (
	"bytes"
	"fmt"
	"log"

	chop "chop"
)

func main() {
	g := chop.ARLatticeFilter(16)
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 2),
		PartChip: []int{0, 1},
		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
	}
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}

	// Attach the observability hooks. The tracer streams JSON Lines into
	// the buffer (use a file to keep the trace around — that is what
	// `chop eval -trace run.jsonl` does); the metrics registry aggregates
	// counters and latency histograms in memory.
	var traceBuf bytes.Buffer
	cfg.Trace = chop.NewTracer(chop.NewWriterSink(&traceBuf))
	cfg.Metrics = chop.NewMetrics()

	res, _, err := chop.Run(p, cfg, chop.Iterative)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: %d trials, %d feasible, %d non-inferior designs\n\n",
		res.Trials, res.FeasibleTrials, len(res.Best))

	// Replay the trace into the explanation report: per-stage time
	// breakdown, BAD predictions per partition, rejection reasons.
	rep, err := chop.ReplayTrace(&traceBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Format())

	// The metrics registry is independent of the trace and much cheaper:
	// fixed-size histograms instead of one event per trial.
	fmt.Println("\nmetrics:")
	fmt.Print(cfg.Metrics.Text())
}
