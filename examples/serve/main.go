// Serve: embed the CHOP service plane in a program. The server mounts as a
// plain http.Handler (here on httptest's in-process listener), runs an eval
// job submitted over POST /api/v1/runs with W3C trace-context propagation,
// follows its live trace on the SSE endpoint, scrapes /metrics, and finally
// stitches the caller's and the server's trace streams into one tree — the
// same surface `chop serve`, `chop submit` and `chop trace` expose on real
// ports and files.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	chop "chop"
	"chop/internal/spec"
)

func main() {
	// The server records sampled requests and their job runs into its own
	// JSONL stream; a real deployment passes `chop serve -trace <file>`.
	var serverTrace bytes.Buffer
	srv := chop.NewServer(chop.ServeOptions{
		MaxConcurrent: 2,
		TraceSink:     chop.NewWriterSink(&serverTrace),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	// The caller records its own side of the story and joins the two via
	// a traceparent header: the root span's context travels in the request
	// context, and ServeClient injects the header.
	var clientTrace bytes.Buffer
	tracer := chop.NewTracerWith(chop.NewWriterSink(&clientTrace), chop.TracerOptions{})
	root := tracer.Span("example submit")
	ctx := chop.WithTraceContext(context.Background(), root.Context())

	client := &chop.ServeClient{Base: ts.URL}
	raw, err := json.Marshal(spec.Example())
	if err != nil {
		log.Fatal(err)
	}
	run, err := client.Submit(ctx, chop.ServeSubmitSpec{Kind: "eval", Spec: raw})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted run %s (state %s, trace %s)\n", run.ID, run.State, run.TraceID)

	// Stream its trace: replay of the bounded ring, then live events,
	// then one `done` event carrying the final status.
	events, err := http.Get(ts.URL + "/api/v1/runs/" + run.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	traces := 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: trace") {
			traces++
		}
		if strings.HasPrefix(line, "event: done") {
			break
		}
	}
	fmt.Printf("streamed %d trace events over SSE\n", traces)

	// The run's result is retained until the server shuts down.
	ctxAwait, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	run, err = client.Await(ctxAwait, run.ID, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run %s finished: state=%s traceEvents=%d\n", run.ID, run.State, run.TraceEvents)
	root.End()

	// /metrics carries the pipeline counters merged from the finished run
	// alongside the server's own request-latency families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	msc := bufio.NewScanner(mresp.Body)
	for msc.Scan() {
		line := msc.Text()
		if strings.HasPrefix(line, "chop_core_trials ") ||
			strings.HasPrefix(line, "chop_serve_runs_done ") ||
			strings.HasPrefix(line, "chop_build_info{") {
			fmt.Println(line)
		}
	}

	// Stitch both processes' streams into one tree — what `chop trace
	// client.jsonl server.jsonl` does with files.
	stitched, err := chop.Stitch([]chop.StitchSource{
		{Name: "client", R: &clientTrace},
		{Name: "server", R: &serverTrace},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range stitched {
		fmt.Printf("stitched trace %s: %d spans from %d sources, %d orphans\n",
			tr.TraceID, tr.Spans, len(tr.Sources), len(tr.Orphans))
	}
}
