// Serve: embed the CHOP service plane in a program. The server mounts as a
// plain http.Handler (here on httptest's in-process listener), runs an eval
// job submitted over POST /api/v1/runs, follows its live trace on the SSE
// endpoint, and scrapes /metrics — the same surface `chop serve` exposes on
// a real port.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	chop "chop"
	"chop/internal/spec"
)

func main() {
	srv := chop.NewServer(chop.ServeOptions{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	// Submit the example partitioning problem (what `chop spec` prints).
	raw, err := json.Marshal(spec.Example())
	if err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf(`{"kind":"eval","spec":%s}`, raw)
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var run chop.RunStatus
	json.NewDecoder(resp.Body).Decode(&run)
	resp.Body.Close()
	fmt.Printf("submitted run %s (state %s)\n", run.ID, run.State)

	// Stream its trace: replay of the bounded ring, then live events,
	// then one `done` event carrying the final status.
	events, err := http.Get(ts.URL + "/api/v1/runs/" + run.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	traces := 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: trace") {
			traces++
		}
		if strings.HasPrefix(line, "event: done") {
			break
		}
	}
	fmt.Printf("streamed %d trace events over SSE\n", traces)

	// The run's result is retained until the server shuts down.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/v1/runs/" + run.ID)
		if err != nil {
			log.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&run)
		resp.Body.Close()
		if run.State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("run %s finished: state=%s traceEvents=%d\n", run.ID, run.State, run.TraceEvents)

	// /metrics carries the pipeline counters merged from the finished run
	// alongside the server's own request-latency families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	msc := bufio.NewScanner(mresp.Body)
	for msc.Scan() {
		line := msc.Text()
		if strings.HasPrefix(line, "chop_core_trials ") ||
			strings.HasPrefix(line, "chop_serve_runs_done ") ||
			strings.HasPrefix(line, "chop_build_info{") {
			fmt.Println(line)
		}
	}
}
