// figure2 reconstructs the paper's running example (Figures 2-4): a
// five-partition, two-memory, four-chip tentative partitioning where
//
//   - chips may host several partitions (chip 4 holds P4 and P5),
//   - memory blocks sit on chips alongside partitions (MA with P3, MB with
//     P4/P5),
//   - partition-level data flow is acyclic, yet the chip-level flow is
//     cyclic (chip 1 -> chip 2 -> chip 1), which CHOP explicitly allows
//     (paper section 2.3, "cyclic data flow is allowed among chips").
//
// It prints the data-transfer task graph CHOP creates (the paper's Figure
// 3) and the feasibility verdict with the predicted transfer modules (the
// architectural building blocks of Figure 4).
package main

import (
	"fmt"
	"log"

	chop "chop"
)

// buildBehavior constructs a behavior whose level structure decomposes into
// five partitions with the Figure-2 dependency shape:
//
//	P1 -> P2 -> P4 -> P5,  P1 -> P3 -> P4,  P3 reads MA, P5 writes MB.
func buildBehavior() (*chop.Graph, [][]int) {
	g := chop.NewGraph("figure2")
	in1 := g.AddNode("in1", chop.OpInput, 16)
	in2 := g.AddNode("in2", chop.OpInput, 16)

	stage := func(tag string, srcs []int, muls, adds int) []int {
		var outs []int
		for i := 0; i < muls; i++ {
			m := g.AddNode(fmt.Sprintf("%s_m%d", tag, i), chop.OpMul, 16)
			g.MustConnect(srcs[i%len(srcs)], m)
			outs = append(outs, m)
		}
		for i := 0; i < adds; i++ {
			a := g.AddNode(fmt.Sprintf("%s_a%d", tag, i), chop.OpAdd, 16)
			g.MustConnect(outs[i%len(outs)], a)
			g.MustConnect(srcs[(i+1)%len(srcs)], a)
			outs = append(outs, a)
		}
		return outs
	}
	collect := func(from, to int) []int {
		var ids []int
		for id := from; id < to; id++ {
			ids = append(ids, id)
		}
		return ids
	}

	m0 := len(g.Nodes)
	p1 := stage("p1", []int{in1, in2}, 3, 2)
	m1 := len(g.Nodes)
	p2 := stage("p2", p1[len(p1)-2:], 2, 2)
	m2 := len(g.Nodes)
	// P3 reads coefficients from memory block MA.
	rd := g.AddMemNode("p3_rd", chop.OpMemRd, 16, "MA")
	p3srcs := append(p1[len(p1)-1:], rd)
	p3 := stage("p3", p3srcs, 2, 1)
	m3 := len(g.Nodes)
	p4 := stage("p4", []int{p2[len(p2)-1], p3[len(p3)-1]}, 2, 2)
	m4 := len(g.Nodes)
	p5 := stage("p5", p4[len(p4)-1:], 1, 2)
	wr := g.AddMemNode("p5_wr", chop.OpMemWr, 16, "MB")
	g.MustConnect(p5[len(p5)-1], wr)
	m5 := len(g.Nodes)
	out := g.AddNode("out", chop.OpOutput, 16)
	g.MustConnect(p5[len(p5)-1], out)

	parts := [][]int{
		collect(m0, m1), // P1
		collect(m1, m2), // P2
		collect(m2, m3), // P3 (includes the MA read)
		collect(m3, m4), // P4
		collect(m4, m5), // P5 (includes the MB write)
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	return g, parts
}

func main() {
	g, parts := buildBehavior()

	// Chip assignment mirroring Figure 2, with a chip-level cycle:
	// P2 on chip 2 feeds P4 back on chip 1 while P1 (chip 1) feeds P2
	// (chip 2): chip1 -> chip2 -> chip1.
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    parts,
		PartChip: []int{0, 1, 2, 0, 3}, // P1,P4 on chip1; P2 chip2; P3 chip3; P5 chip4
		Chips:    chop.NewChipSet(4, chop.MOSISPackages()[1], 4),
		Mem: chop.MemSystem{
			Blocks: []chop.MemBlock{
				{Name: "MA", Words: 256, Width: 16, Ports: 1, AccessTime: 150,
					Area: 9000, ControlPins: 2},
				{Name: "MB", Words: 128, Width: 16, Ports: 1, AccessTime: 150,
					Area: 6000, ControlPins: 2},
			},
			Assign: chop.MemAssignment{"MA": 2, "MB": 3},
		},
	}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("partitioning accepted: partition flow acyclic, chip-level flow cyclic (chip1->chip2->chip1)")

	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
			Delay: chop.Constraint{Bound: 60000, MinProb: 0.8},
		},
	}
	res, preds, err := chop.Run(p, cfg, chop.Iterative)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range preds {
		fmt.Printf("P%d: %d predictions, %d feasible\n", i+1, r.Total, r.Feasible)
	}
	if len(res.Best) == 0 {
		fmt.Println("infeasible under these constraints")
		return
	}
	b := res.Best[0]
	fmt.Printf("\nfeasible: interval=%d cycles delay=%d cycles clock=%.0f ns\n",
		b.IIMain, b.DelayMain, b.Clock.ML)

	// The task graph (paper Figure 3): one data-transfer task per
	// inter-chip flow, plus the partitions themselves.
	fmt.Println("\ndata-transfer task graph (Figure 3):")
	for _, m := range b.Modules {
		fmt.Printf("  %-14s %4d bits  wait=%-3d transfer=%-2d buffer=%4d bits  bus=%2d pins\n",
			m.Task.Name, m.Task.Bits, m.Wait, m.Transfer, m.BufferBits, m.Pins)
	}
	fmt.Println("\nper-chip usage:")
	for ci := range p.Chips.Chips {
		fmt.Printf("  chip %d: area %.0f mil^2, %d signal pins\n",
			ci+1, b.ChipArea[ci].ML, b.ChipPins[ci])
	}
}
