package chop_test

import (
	"bytes"
	"encoding/json"
	"testing"

	chop "chop"
)

// TestRunStatsThroughFacade runs the documented telemetry session through
// the public API: attach a RunStats and a JSONL StatsSnapshotter to a run,
// then check the final fold and the time series agree with the result.
func TestRunStatsThroughFacade(t *testing.T) {
	p, cfg := obsProblem()
	cfg.Metrics = chop.NewMetrics()
	cfg.Stats = chop.NewRunStats("facade")

	var series bytes.Buffer
	snap := chop.NewStatsSnapshotter(chop.StatsSnapshotterOptions{
		Metrics: cfg.Metrics,
		Stats:   cfg.Stats,
		Out:     &series,
	})

	snap.Tick() // baseline sample: later deltas are relative to this

	res, _, err := chop.Run(p, cfg, chop.Enumeration)
	if err != nil {
		t.Fatal(err)
	}
	snap.Stop() // takes the final sample and flushes
	if err := snap.Err(); err != nil {
		t.Fatal(err)
	}

	fold := cfg.Stats.Snapshot()
	if !fold.Started || !fold.Done() {
		t.Fatalf("final fold not terminal: %+v", fold)
	}
	if fold.Trials != int64(res.Trials) {
		t.Fatalf("fold counted %d trials, search ran %d", fold.Trials, res.Trials)
	}
	if fold.Feasible != int64(res.FeasibleTrials) {
		t.Fatalf("fold counted %d feasible, search found %d", fold.Feasible, res.FeasibleTrials)
	}
	var perShard int64
	for _, sh := range fold.ShardTable {
		perShard += sh.Trials
	}
	if perShard != fold.Trials {
		t.Fatalf("shard table sums to %d, aggregate %d", perShard, fold.Trials)
	}

	// The JSONL series decodes as StatsRecords and its trial deltas sum to
	// the same total the search reported.
	var sumTrials int64
	records := 0
	for _, line := range bytes.Split(series.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec chop.StatsRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad series line %q: %v", line, err)
		}
		records++
		sumTrials += rec.CounterDeltas["core.trials"]
	}
	if records == 0 {
		t.Fatal("snapshotter wrote no samples")
	}
	if sumTrials != int64(res.Trials) {
		t.Fatalf("series deltas sum to %d trials, search ran %d", sumTrials, res.Trials)
	}
}
