package chop_test

import (
	"fmt"
	"log"

	chop "chop"
)

// ExampleRun reproduces the paper's core workflow: check a tentative
// 2-partition AR-filter implementation against the experiment-1
// constraints.
func ExampleRun() {
	g := chop.ARLatticeFilter(16)
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 2),
		PartChip: []int{0, 1},
		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
	}
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}
	res, _, err := chop.Run(p, cfg, chop.Iterative)
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best[0]
	fmt.Printf("feasible at interval %d cycles, delay %d cycles\n", best.IIMain, best.DelayMain)
	// Output:
	// feasible at interval 40 cycles, delay 83 cycles
}

// ExampleCompileHLS compiles a behavioral program with a counted loop; the
// loop is unrolled so the resulting data-flow graph is acyclic (paper
// section 2.3).
func ExampleCompileHLS() {
	g, err := chop.CompileHLS("acc", `
		input x
		acc = x
		loop 3 {
			acc = acc + x
		}
		output acc
	`, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d additions after unrolling\n", g.OpCounts()[chop.OpAdd])
	out, err := chop.Evaluate(g, map[string]int64{"x": 5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range out {
		fmt.Printf("acc(5) = %d\n", v)
	}
	// Output:
	// 3 additions after unrolling
	// acc(5) = 20
}

// ExamplePredict runs the BAD predictor standalone on a behavior and prints
// the frontier of predicted implementations.
func ExamplePredict() {
	g := chop.FIR(4, 16)
	res, err := chop.Predict(g, chop.PredictConfig{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true, NoPipelined: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		MaxII:  30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fastest := res.Designs[0]
	fmt.Printf("fastest: %s, %d cycles, %d multipliers\n",
		fastest.Style, fastest.II, fastest.FUs[chop.OpMul])
	// Output:
	// fastest: non-pipelined, 4 cycles, 4 multipliers
}
