module chop

go 1.22
