package chop_test

import (
	"strings"
	"testing"

	chop "chop"
)

// TestQuickstartFlow exercises the documented public-API session end to
// end: build a behavior, partition it, configure CHOP, run both heuristics.
func TestQuickstartFlow(t *testing.T) {
	g := chop.ARLatticeFilter(16)
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 2),
		PartChip: []int{0, 1},
		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
	}
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}
	for _, h := range []chop.Heuristic{chop.Enumeration, chop.Iterative} {
		res, preds, err := chop.Run(p, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		if len(preds) != 2 {
			t.Fatalf("%v: predictions for %d partitions", h, len(preds))
		}
		if len(res.Best) == 0 {
			t.Fatalf("%v: no feasible design", h)
		}
		best := res.Best[0]
		if best.IIMain <= 0 || best.DelayMain < best.IIMain || !best.Feasible {
			t.Fatalf("%v: malformed best design %+v", h, best)
		}
	}
}

// TestCustomGraphThroughFacade builds a user graph through the facade and
// predicts it with BAD directly.
func TestCustomGraphThroughFacade(t *testing.T) {
	g := chop.NewGraph("user")
	in := g.AddNode("in", chop.OpInput, 16)
	m := g.AddNode("m", chop.OpMul, 16)
	a := g.AddNode("a", chop.OpAdd, 16)
	out := g.AddNode("out", chop.OpOutput, 16)
	g.MustConnect(in, m)
	g.MustConnect(m, a)
	g.MustConnect(a, out)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := chop.Predict(g, chop.PredictConfig{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		MaxII:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Designs) == 0 {
		t.Fatal("no designs for trivial graph")
	}
	for _, d := range res.Designs {
		if d.Style != chop.Pipelined && d.Style != chop.NonPipelined {
			t.Fatalf("unknown style %v", d.Style)
		}
	}
}

// TestKLFacade exercises the baseline exports.
func TestKLFacade(t *testing.T) {
	g := chop.ARLatticeFilter(16)
	parts := chop.KLKWay(g, 2, 10)
	if len(parts) != 2 {
		t.Fatalf("KWay parts = %d", len(parts))
	}
	a := chop.KLBisect(g, 10)
	if chop.KLCutBits(g, a) <= 0 {
		t.Fatal("connected graph must have a positive cut")
	}
	if !chop.KLValidateAcyclic(g, chop.LevelPartitions(g, 3)) {
		t.Fatal("level partitions must validate acyclic")
	}
}

// TestSynthesisFacade drives the exported synthesis/verification surface:
// bind a design, emit Verilog, co-simulate the partitioned system.
func TestSynthesisFacade(t *testing.T) {
	g := chop.ARLatticeFilter(16)
	p := &chop.Partitioning{
		Graph:    g,
		Parts:    chop.LevelPartitions(g, 2),
		PartChip: []int{0, 1},
		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
	}
	cfg := chop.Config{
		Lib:    chop.Table1Library(),
		Style:  chop.Style{MultiCycle: true, NoPipelined: true},
		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 1, TransferMult: 1},
		Constraints: chop.Constraints{
			Perf:  chop.Constraint{Bound: 20000, MinProb: 1},
			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
		},
	}
	inputs := map[string]int64{"x1": 5, "x2": -3, "x3": 8, "x4": 2}
	if err := chop.CosimVerifyBest(p, cfg, chop.Iterative, inputs, nil); err != nil {
		t.Fatal(err)
	}

	preds, err := chop.PredictPartitions(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := p.Subgraphs()[0]
	d := preds[0].Designs[0]
	cyc := chop.OpCyclesFor(d, true, cfg.Clocks.DatapathNS())
	nl, err := chop.Bind(sub, d, cfg.Lib, cyc)
	if err != nil {
		t.Fatal(err)
	}
	v := nl.Verilog(sub)
	if len(v) == 0 || !strings.Contains(v, "endmodule") {
		t.Fatalf("Verilog emission broken: %q", v[:min(len(v), 120)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
