GO ?= go

.PHONY: all build vet lint test race bench bench-stats-gate profile-smoke gobench fuzz chaos trace-smoke loadgen-smoke dist-smoke cover serve ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint fails when any file is not gofmt-clean, then vets.
lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the calibrated harness in short mode and writes BENCH_<n>.json.
# Gate a change against a saved baseline with:
#   go run ./cmd/chop bench -compare BENCH_1.json BENCH_2.json -tolerance 10
bench:
	$(GO) run ./cmd/chop bench -short -json

# bench-stats-gate bounds the telemetry plane's overhead: the search/stats
# workloads must stay within STATS_GATE percent of their search/stress
# partners. Runs at the full (non-short) budget — a single short iteration
# is too noisy to gate a few-percent delta on.
STATS_GATE ?= 5
bench-stats-gate:
	$(GO) run ./cmd/chop bench -run search/st -stats-gate $(STATS_GATE)

# profile-smoke records a short phase-attribution profile of the search
# workload into PROFILE_DIR: cpu.pprof, heap.pprof and profile.json. Gate a
# change against a committed baseline with:
#   go run ./cmd/chop profile -compare <baseline-dir> -alloc-tolerance 10
PROFILE_DIR ?= profile-smoke
profile-smoke:
	$(GO) run ./cmd/chop profile -short -dir $(PROFILE_DIR)

# gobench runs the in-tree go test benchmarks (overhead gates etc.).
# -run '^$' matches no test name, so only benchmarks execute (-run XXX
# relied on no test happening to contain the substring).
gobench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# fuzz smoke-tests the predictor-cache content key: determinism,
# rename-insensitivity, mutation-sensitivity, no panics.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz=FuzzPredictCacheKey -fuzztime=$(FUZZTIME) ./internal/bad

# chaos runs the fault-injected service-plane smoke: an in-process server
# with ~10% injected job faults under random submissions and cancels,
# asserting the registry drains clean (no stuck runs, no leaked goroutines).
CHAOS_SECS ?= 30
CHAOS_STATS_OUT ?= chaos-stats.jsonl
chaos:
	CHOP_CHAOS_SMOKE=1 CHOP_CHAOS_SMOKE_SECS=$(CHAOS_SECS) \
		CHOP_CHAOS_STATS_OUT=$(abspath $(CHAOS_STATS_OUT)) \
		$(GO) test ./internal/serve -run TestChaosSmoke -count=1 -v

# trace-smoke exercises distributed tracing end to end across two real
# processes: chop serve -trace and a traced chop submit, stitched with
# chop trace -fail-on-orphans (fails on broken parent links) and exported
# as TRACE_SMOKE_DIR/perfetto.json for ui.perfetto.dev.
TRACE_SMOKE_DIR ?= trace-smoke
trace-smoke:
	TRACE_SMOKE_DIR=$(TRACE_SMOKE_DIR) ./scripts/trace-smoke.sh

# loadgen-smoke drives the SLO harness against a real admission-controlled
# chop serve process (API keys, quotas, rate limits) at low RPS, gates the
# resulting loadgen.json (p99 latency + goroutine/FD leak budgets), and
# checks that a wrong API key buckets under bad-key. Gate a change against
# a saved baseline with:
#   go run ./cmd/chop loadgen -compare loadgen-smoke/loadgen.json
LOADGEN_SECS ?= 10
LOADGEN_DIR ?= loadgen-smoke
loadgen-smoke:
	LOADGEN_DIR=$(LOADGEN_DIR) LOADGEN_SECS=$(LOADGEN_SECS) ./scripts/loadgen-smoke.sh

# dist-smoke runs the fault-tolerant distributed search across real
# processes: a coordinator and two chop serve workers, one stalled by
# fault injection and SIGKILLed mid-search. Gates on lease recovery
# (shards reassigned to the survivor) and on the merged result staying
# byte-identical to a serial run, for both heuristics; then stitches a
# clean traced run with chop trace -fail-on-orphans and exports
# DIST_SMOKE_DIR/perfetto.json.
DIST_SMOKE_DIR ?= dist-smoke
dist-smoke:
	DIST_SMOKE_DIR=$(DIST_SMOKE_DIR) ./scripts/dist-smoke.sh

# cover writes coverage.out plus a browsable HTML report.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -html=coverage.out -o coverage.html
	$(GO) tool cover -func=coverage.out | tail -1

# serve starts the HTTP service plane on :8080.
serve:
	$(GO) run ./cmd/chop serve -addr :8080 -log-level debug

# ci is what .github/workflows/ci.yml runs.
ci: lint build race
