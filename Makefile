GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

# ci is what .github/workflows/ci.yml runs.
ci: vet build race
