// Package chop is a Go reproduction of CHOP, the constraint-driven
// system-level partitioner of Kucukcakar and Parker (USC CEng 90-26 / DAC
// 1991). It partitions behavioral specifications — acyclic data-flow graphs
// of operations — onto multiple chips while satisfying hard constraints on
// per-chip area, pin count, system performance (initiation interval) and
// system delay.
//
// The package is a stable facade over the implementation packages:
//
//   - dfg: behavioral specifications (data-flow graphs) and benchmarks
//   - lib: component libraries (the paper's Table 1)
//   - chip: chip packages and chip sets (the paper's Table 2)
//   - mem: memory blocks and their chip assignment
//   - bad: the Behavioral Area-Delay predictor
//   - core: the partitioner itself (integration, feasibility, heuristics)
//   - kl: a Kernighan-Lin min-cut baseline
//   - experiments: the paper's evaluation (Tables 3-6, Figures 7-8)
//
// A minimal session mirrors the paper's method: describe the behavior,
// partition it, pick a chip set, and ask CHOP whether the partitioning is
// feasible:
//
//	g := chop.ARLatticeFilter(16)
//	p := &chop.Partitioning{
//		Graph:    g,
//		Parts:    chop.LevelPartitions(g, 2),
//		PartChip: []int{0, 1},
//		Chips:    chop.NewChipSet(2, chop.MOSISPackages()[1], 4),
//	}
//	cfg := chop.Config{
//		Lib:    chop.Table1Library(),
//		Clocks: chop.Clocks{MainNS: 300, DatapathMult: 10, TransferMult: 1},
//		Constraints: chop.Constraints{
//			Perf:  chop.Constraint{Bound: 30000, MinProb: 1},
//			Delay: chop.Constraint{Bound: 30000, MinProb: 0.8},
//		},
//	}
//	res, preds, err := chop.Run(p, cfg, chop.Iterative)
package chop

import (
	"chop/internal/advisor"
	"chop/internal/bad"
	"chop/internal/benchkit"
	"chop/internal/chip"
	"chop/internal/core"
	"chop/internal/cosim"
	"chop/internal/dfg"
	"chop/internal/dist"
	"chop/internal/hlspec"
	"chop/internal/kl"
	"chop/internal/lib"
	"chop/internal/mem"
	"chop/internal/obs"
	"chop/internal/resilience"
	"chop/internal/rtl"
	"chop/internal/serve"
	"chop/internal/sim"
	"chop/internal/stats"
)

// Behavioral specification types (package dfg).
type (
	// Graph is an acyclic data-flow graph: the behavioral specification.
	Graph = dfg.Graph
	// Node is one operation in a Graph.
	Node = dfg.Node
	// Edge is one data dependency in a Graph.
	Edge = dfg.Edge
	// Op identifies an operation type.
	Op = dfg.Op
)

// Operation types.
const (
	OpInput  = dfg.OpInput
	OpOutput = dfg.OpOutput
	OpAdd    = dfg.OpAdd
	OpSub    = dfg.OpSub
	OpMul    = dfg.OpMul
	OpDiv    = dfg.OpDiv
	OpCmp    = dfg.OpCmp
	OpMemRd  = dfg.OpMemRd
	OpMemWr  = dfg.OpMemWr
)

// NewGraph returns an empty behavioral specification.
func NewGraph(name string) *Graph { return dfg.New(name) }

// Benchmark builders.
var (
	// ARLatticeFilter is the paper's AR lattice filter (Fig. 6 class).
	ARLatticeFilter = dfg.ARLatticeFilter
	// EllipticWaveFilter is the fifth-order elliptic wave filter benchmark.
	EllipticWaveFilter = dfg.EllipticWaveFilter
	// FIR is an n-tap FIR filter benchmark.
	FIR = dfg.FIR
	// DiffEq is the HAL differential-equation benchmark.
	DiffEq = dfg.DiffEq
	// LevelPartitions splits a graph into n level-ordered partitions of
	// roughly equal operation count (always acyclic).
	LevelPartitions = dfg.LevelPartitions
)

// Component library types (package lib).
type (
	// Library is a component library (modules + register and mux cells).
	Library = lib.Library
	// Module is one library component.
	Module = lib.Module
	// ModuleSet is one module choice per operation type.
	ModuleSet = lib.ModuleSet
)

var (
	// Table1Library is the paper's Table 1 component library.
	Table1Library = lib.Table1Library
	// ExtendedLibrary adds subtract/divide/compare entries to Table 1.
	ExtendedLibrary = lib.ExtendedLibrary
)

// Chip types (package chip).
type (
	// ChipPackage is a physical chip package (the paper's Table 2 rows).
	ChipPackage = chip.Package
	// Chip is one chip instance in the target set.
	Chip = chip.Chip
	// ChipSet is the multi-chip target.
	ChipSet = chip.Set
)

var (
	// MOSISPackages is the paper's Table 2 package subset.
	MOSISPackages = chip.MOSISPackages
	// NewChipSet builds n identical chips from a package.
	NewChipSet = chip.NewUniformSet
)

// Memory types (package mem).
type (
	// MemBlock is one memory module.
	MemBlock = mem.Block
	// MemSystem is the set of memory blocks plus chip assignment.
	MemSystem = mem.System
	// MemAssignment maps memory block names to chip indices.
	MemAssignment = mem.Assignment
)

// Statistical prediction types (package stats).
type (
	// Triplet is a lower-bound / most-likely / upper-bound estimate.
	Triplet = stats.Triplet
	// Constraint is a probabilistic hard upper bound.
	Constraint = stats.Constraint
)

// Predictor types (package bad).
type (
	// Clocks derives the datapath and transfer clocks from the main clock.
	Clocks = bad.Clocks
	// Style selects the architecture style (single/multi-cycle,
	// pipelined/non-pipelined, testability).
	Style = bad.Style
	// Design is one predicted partition implementation.
	Design = bad.Design
	// PredictConfig parameterizes a standalone BAD prediction.
	PredictConfig = bad.Config
	// PredictResult is the outcome of a BAD prediction.
	PredictResult = bad.Result
	// DesignStyle distinguishes pipelined from non-pipelined designs.
	DesignStyle = bad.DesignStyle
	// PredictCache memoizes BAD predictions under a content key; attach
	// one via Config.PredictCache (or PredictConfig.Cache) to stop
	// advisor move loops and repeated evaluations from re-predicting
	// unchanged partitions. Safe for concurrent use.
	PredictCache = bad.PredictCache
	// PredictCacheStats is a hit/miss snapshot of a PredictCache.
	PredictCacheStats = bad.CacheStats
)

// Design styles.
const (
	NonPipelined = bad.NonPipelined
	Pipelined    = bad.Pipelined
)

// Predict runs BAD standalone on one partition graph.
func Predict(g *Graph, cfg PredictConfig) (PredictResult, error) { return bad.Predict(g, cfg) }

var (
	// NewPredictCache builds an LRU prediction cache bounded to capacity
	// entries (<= 0 selects the default of 512).
	NewPredictCache = bad.NewPredictCache
	// PredictCacheKey computes the content key a PredictCache files a
	// prediction under (partition structure + library + style + bounds).
	PredictCacheKey = bad.CacheKey
)

// Partitioner types (package core).
type (
	// Partitioning is a tentative partitioning onto a chip set.
	Partitioning = core.Partitioning
	// Config parameterizes a CHOP run.
	Config = core.Config
	// Constraints are the system-level hard constraints.
	Constraints = core.Constraints
	// GlobalDesign is one integrated multi-chip implementation.
	GlobalDesign = core.GlobalDesign
	// SearchResult aggregates one heuristic run.
	SearchResult = core.SearchResult
	// SpacePoint is one explored design point (Figures 7/8 dots).
	SpacePoint = core.SpacePoint
	// Heuristic selects the search strategy.
	Heuristic = core.Heuristic
)

// The paper's two search heuristics.
const (
	// Enumeration explicitly enumerates implementation combinations ("E").
	Enumeration = core.Enumeration
	// Iterative is the Figure-5 serialization algorithm ("I").
	Iterative = core.Iterative
)

// Run predicts every partition with BAD and searches for feasible global
// implementations with the chosen heuristic.
func Run(p *Partitioning, cfg Config, h Heuristic) (SearchResult, []PredictResult, error) {
	return core.Run(p, cfg, h)
}

// PredictPartitions runs BAD on every partition of p.
func PredictPartitions(p *Partitioning, cfg Config) ([]PredictResult, error) {
	return core.PredictPartitions(p, cfg)
}

// Search runs a heuristic over precomputed per-partition predictions.
func Search(p *Partitioning, cfg Config, preds []PredictResult, h Heuristic) (SearchResult, error) {
	return core.Search(p, cfg, preds, h)
}

// Baseline partitioner (package kl).
var (
	// KLBisect is Kernighan-Lin bisection minimizing cut bits.
	KLBisect = kl.Bisect
	// KLKWay recursively bisects into k parts.
	KLKWay = kl.KWay
	// KLCutBits measures a bisection's cut size.
	KLCutBits = kl.CutBits
	// KLValidateAcyclic reports whether a partitioning is admissible.
	KLValidateAcyclic = kl.ValidateAcyclic
)

// Synthesis and verification (packages rtl and sim).
type (
	// Netlist is a bound register-transfer structure of one partition
	// implementation.
	Netlist = rtl.Netlist
	// SimCoeffs supplies constants for coefficient operations during
	// simulation.
	SimCoeffs = sim.Coeffs
)

var (
	// Bind synthesizes a predicted design into an RTL netlist.
	Bind = rtl.Bind
	// CosimVerify synthesizes one design per partition and checks the
	// composed multi-chip system against the behavioral golden model.
	CosimVerify = cosim.Verify
	// CosimVerifyBest runs CHOP and verifies its fastest all-non-pipelined
	// feasible design end to end.
	CosimVerifyBest = cosim.VerifyBest
	// CosimVerifyStream streams samples through a multi-chip system whose
	// partitions may be pipelined.
	CosimVerifyStream = cosim.VerifyStream
	// OpCyclesFor derives the per-op cycle counts a design was predicted
	// with, for use with Bind.
	OpCyclesFor = rtl.OpCyclesFor
	// Evaluate executes a behavior on concrete inputs (golden model).
	Evaluate = sim.Evaluate
	// RunNetlist interprets a bound netlist cycle by cycle.
	RunNetlist = sim.RunNetlist
	// VerifyNetlist checks a netlist against the golden model.
	VerifyNetlist = sim.VerifyNetlist
)

// Observability types (package obs). All are nil-safe: a Config with a nil
// Trace and nil Metrics runs the pipeline with near-zero overhead.
type (
	// Tracer emits hierarchical timed spans and structured events for a
	// CHOP run; attach one via Config.Trace.
	Tracer = obs.Tracer
	// TraceSpan is one timed stage of a traced run.
	TraceSpan = obs.Span
	// TraceEvent is one trace record (begin/end/point) as serialized to
	// JSONL by WriterSink and decoded by ReplayTrace.
	TraceEvent = obs.Event
	// TraceSink receives trace events; see NewWriterSink and
	// NewCountingSink.
	TraceSink = obs.Sink
	// Metrics is a counter and latency-histogram registry; attach one via
	// Config.Metrics.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// TraceReport is the aggregation ReplayTrace builds from a trace.
	TraceReport = obs.Report
	// PushSink adapts a plain func(TraceEvent) into a TraceSink.
	PushSink = obs.PushSink
	// FileSink is a buffered JSONL sink backed by a file; Close flushes.
	FileSink = obs.FileSink
	// ProgressSink renders throttled human-readable progress lines from a
	// live trace stream.
	ProgressSink = obs.ProgressSink
	// Profiler manages CPU/heap/block profiles around a run; see
	// StartProfiler.
	Profiler = obs.Profiler
	// ProfileConfig names the profile output files for StartProfiler.
	ProfileConfig = obs.ProfileConfig
	// RingSink is a bounded trace buffer with replay and live fan-out:
	// Subscribe returns the retained events plus a channel of what comes
	// next, and slow subscribers lose their oldest pending events rather
	// than stalling the run (see RingSub.Dropped).
	RingSink = obs.RingSink
	// RingSub is one live subscription to a RingSink.
	RingSub = obs.RingSub
	// BuildInfo is the binary's build identity (go version, VCS revision)
	// as read from the runtime's embedded build metadata.
	BuildInfo = obs.BuildInfo
	// RunStats is the lock-cheap per-shard search progress tracker;
	// attach one via Config.Stats and read it live with Snapshot while
	// the search runs.
	RunStats = obs.RunStats
	// RunStatsSnapshot is one consistent point-in-time fold of a
	// RunStats: aggregate progress, rates, ETA, the per-shard table,
	// cache traffic, checkpoint lag and the slowest-trial exemplars.
	RunStatsSnapshot = obs.RunStatsSnapshot
	// ShardSnapshot is one shard's row in a RunStatsSnapshot.
	ShardSnapshot = obs.ShardSnapshot
	// SlowTrial is one retained slowest-trial exemplar (duration, shard,
	// feasibility, rejection reason).
	SlowTrial = obs.Exemplar
	// StatsSnapshotter samples a Metrics registry (and optionally a
	// RunStats) on a fixed cadence into a bounded in-memory ring and,
	// when configured with a writer, a JSONL time series.
	StatsSnapshotter = obs.Snapshotter
	// StatsSnapshotterOptions configures a StatsSnapshotter.
	StatsSnapshotterOptions = obs.SnapshotterOptions
	// StatsRecord is one sampled point of the telemetry time series:
	// counter deltas over the interval, gauges, and the run fold.
	StatsRecord = obs.StatsRecord
)

var (
	// NewTracer wraps a sink into a Tracer (nil sink yields a disabled,
	// nil Tracer).
	NewTracer = obs.New
	// NewWriterSink streams events as JSON Lines to a writer.
	NewWriterSink = obs.NewWriterSink
	// NewCountingSink counts events by kind and name without storing them.
	NewCountingSink = obs.NewCountingSink
	// NewFileSink opens a buffered JSONL trace file (remember to Close).
	NewFileSink = obs.NewFileSink
	// NewTeeSink fans events out to several sinks (nils dropped; returns
	// nil when none remain, which disables tracing).
	NewTeeSink = obs.NewTeeSink
	// NewProgressSink builds a throttled progress renderer; pass interval 0
	// for the default cadence.
	NewProgressSink = obs.NewProgressSink
	// NewMetrics returns an empty metrics registry. Its WriteProm/PromText
	// methods render Prometheus text exposition; Vars renders an
	// expvar-style flat map.
	NewMetrics = obs.NewMetrics
	// StartProfiler starts the profiles named in a ProfileConfig and
	// returns a Profiler whose Stop writes them out (nil-safe when the
	// config is empty).
	StartProfiler = obs.StartProfiler
	// ReplayTrace aggregates a JSONL trace stream into a TraceReport;
	// its Format method renders the human-readable explanation.
	ReplayTrace = obs.Replay
	// NewRingSink builds a bounded replay/fan-out trace buffer (capacity
	// <= 0 selects the default 4096 events).
	NewRingSink = obs.NewRingSink
	// ReadBuildInfo reads the binary's build identity (never fails;
	// degrades to "unknown" fields).
	ReadBuildInfo = obs.ReadBuildInfo
	// RecordBuildInfo exposes the build identity on a Metrics registry as
	// the chop_build_info{go_version,vcs_revision} gauge.
	RecordBuildInfo = obs.RecordBuildInfo
	// NewRunTracer wraps a sink into a Tracer whose every event is
	// stamped with a run tag, so traces from several runs can share one
	// stream and still replay separately (nil sink yields a nil Tracer).
	NewRunTracer = obs.NewRunTracer
	// NewRunStats allocates a per-shard search progress tracker; attach
	// it via Config.Stats.
	NewRunStats = obs.NewRunStats
	// NewStatsSnapshotter builds a telemetry sampler; call Run to sample
	// on an interval and Stop to take the final sample and flush.
	NewStatsSnapshotter = obs.NewSnapshotter
)

// Distributed tracing (package obs): W3C trace context over process
// boundaries, globally-unique span IDs, and offline stitching of several
// processes' JSONL traces into one tree. The serve API speaks standard
// `traceparent` headers; `chop trace` is the CLI stitcher.
type (
	// TraceContext is a W3C trace-context triple (trace ID, span ID,
	// sampled flag) as carried by `traceparent` headers.
	TraceContext = obs.TraceContext
	// TracerOptions parameterizes NewTracerWith: a run tag to stamp on
	// every event and a remote TraceContext to join (its trace ID is
	// adopted; its span ID becomes the parent of root spans).
	TracerOptions = obs.TracerOptions
	// StitchSource is one process's trace stream handed to Stitch,
	// labeled with a source name (usually the file name).
	StitchSource = obs.StitchSource
	// StitchTrace is one stitched trace: the span trees of every source
	// that recorded events under one trace ID, clock-aligned.
	StitchTrace = obs.StitchTrace
	// StitchSpan is one span in a StitchTrace, with its source
	// attribution and children.
	StitchSpan = obs.StitchSpan
	// CriticalSegment is one segment of a StitchTrace's critical path.
	CriticalSegment = obs.CriticalSegment
	// ServeClient is a small client for the serve API that injects the
	// caller's TraceContext (from the request context) as a traceparent
	// header and surfaces error envelopes with their request IDs.
	ServeClient = serve.Client
	// ServeSubmitSpec is the run-submission body ServeClient.Submit sends.
	ServeSubmitSpec = serve.SubmitSpec
)

// TraceparentHeader is the W3C header name ("traceparent").
const TraceparentHeader = obs.TraceparentHeader

var (
	// NewTracerWith wraps a sink into a Tracer with explicit
	// TracerOptions — joining a remote trace and/or tagging a run (nil
	// sink yields a disabled, nil Tracer). NewTracer is the zero-options
	// shorthand.
	NewTracerWith = obs.NewTracer
	// ParseTraceparent parses a `traceparent` header value.
	ParseTraceparent = obs.ParseTraceparent
	// InjectTraceparent sets the traceparent header from a TraceContext.
	InjectTraceparent = obs.InjectTraceparent
	// TraceparentFromHeader extracts and validates a TraceContext from
	// request headers.
	TraceparentFromHeader = obs.TraceparentFromHeader
	// NewTraceID mints a 32-hex W3C trace ID; NewSpanID a 16-hex span ID
	// (process-unique, one atomic add per call).
	NewTraceID = obs.NewTraceID
	NewSpanID  = obs.NewSpanID
	// WithTraceContext / TraceContextFrom carry a TraceContext through a
	// context.Context (ServeClient injects it from there).
	WithTraceContext = obs.WithTraceContext
	TraceContextFrom = obs.TraceContextFrom
	// Stitch merges several processes' trace streams into clock-aligned
	// span trees, demultiplexed by trace ID; FormatStitch renders the
	// waterfall + critical path, OrphanCount counts spans whose recorded
	// parent no source contains, and Perfetto exports Chrome trace-event
	// JSON for ui.perfetto.dev. `chop trace` drives all four.
	Stitch       = obs.Stitch
	FormatStitch = obs.FormatStitch
	OrphanCount  = obs.OrphanCount
	Perfetto     = obs.Perfetto
)

// Service plane types (package serve): an embeddable HTTP server that runs
// partitioning jobs through a bounded worker pool, streams their traces as
// Server-Sent Events, and exposes the metrics registry on /metrics. `chop
// serve` is the CLI front end.
type (
	// ServeOptions parameterizes NewServer (address, concurrency bound,
	// queue depth, ring capacity, shutdown grace, logger, job table).
	ServeOptions = serve.Options
	// Server is the CHOP service plane; mount Handler() or call
	// ListenAndServe, stop with Drain.
	Server = serve.Server
	// ServeRegistry supervises submitted runs (worker pool + state).
	ServeRegistry = serve.Registry
	// ServeJob defines one run kind: an executable plus an optional
	// submission-time validator.
	ServeJob = serve.Job
	// ServeJobContext carries the per-run tracer, metrics and logger into
	// a ServeJob.
	ServeJobContext = serve.JobContext
	// RunState is a run's lifecycle state (queued/running/done/failed/
	// canceled).
	RunState = serve.State
	// RunStatus is the API form of one run's state and result.
	RunStatus = serve.RunStatus
)

var (
	// NewServer builds the service plane and starts its worker pool.
	NewServer = serve.New
	// DefaultServeJobs is the built-in run-kind table: eval, synth, exp1,
	// exp2, shard.
	DefaultServeJobs = serve.DefaultJobs
)

// Distributed search (package dist): a lease-based shard coordinator that
// farms one planned search across a fleet of serve workers and merges the
// results byte-identically to a serial run, through worker failures,
// stragglers (epoch-fenced reassignment, work stealing) and coordinator
// restarts (signed checkpoints). `chop search -distributed` is the CLI
// front end.
type (
	// DistOptions configures a DistCoordinator: the fleet, lease timing
	// (TTL, hard cap, steal threshold), shard geometry, checkpointing and
	// observability hooks.
	DistOptions = dist.Options
	// DistCoordinator drives one distributed search; build with
	// NewDistCoordinator, execute with Run.
	DistCoordinator = dist.Coordinator
	// ShardPlan is the deterministic shard decomposition of one search,
	// signed so coordinator and workers can prove they agree.
	ShardPlan = core.ShardPlan
	// ShardRequest / ShardResponse are the serve "shard" job's wire forms.
	ShardRequest  = serve.ShardRequest
	ShardResponse = serve.ShardResponse
)

var (
	// NewDistCoordinator parses a spec (the same JSON chop eval takes) and
	// validates the fleet configuration.
	NewDistCoordinator = dist.New
	// PlanShards computes the signed shard decomposition a coordinator
	// and its workers must agree on.
	PlanShards = core.PlanShards
	// SearchShards executes a subset of a plan's shards locally.
	SearchShards = core.SearchShards
	// MergeShardResults folds per-shard results in visit order into the
	// merged SearchResult.
	MergeShardResults = core.MergeShardResults
)

// Benchmark harness types (package benchkit). `chop bench` is the CLI
// front end; these exports let programs run and gate the same harness.
type (
	// BenchOptions parameterizes RunBench (short mode, workload filter).
	BenchOptions = benchkit.Options
	// BenchReport is one schema-versioned harness run (BENCH_<n>.json).
	BenchReport = benchkit.Report
	// BenchResult is one workload's measurements within a BenchReport.
	BenchResult = benchkit.Result
	// BenchDelta is one workload's old-vs-new comparison from CompareBench.
	BenchDelta = benchkit.Delta
)

// BenchSchemaVersion identifies the BENCH report JSON schema.
const BenchSchemaVersion = benchkit.SchemaVersion

var (
	// RunBench measures the calibrated workload set and returns a report.
	RunBench = benchkit.Run
	// CompareBench diffs two reports and flags regressions beyond a
	// percentage tolerance.
	CompareBench = benchkit.Compare
	// LoadBenchReport reads and schema-checks a saved BENCH json file.
	LoadBenchReport = benchkit.Load
	// BenchWorkloads lists the harness's workload set.
	BenchWorkloads = benchkit.Workloads
	// StressDFG builds the harness's layered synthetic stress graph
	// (levels x width nodes of the given bit width).
	StressDFG = benchkit.StressDFG
)

// Fault-tolerance types (package resilience): panic isolation, retries
// with backoff, versioned checkpoints and the fault-injection harness.
// Config.CheckpointPath/Resume and Config.Inject wire them into the search
// pipeline; ServeOptions.DefaultJobTimeout and ServeOptions.Inject into the
// service plane.
type (
	// Injector injects faults (errors, panics, stalls) at named sites for
	// chaos testing; a nil *Injector is inert.
	Injector = resilience.Injector
	// PanicError is a panic recovered by a guard, with site and stack.
	PanicError = resilience.PanicError
	// InjectedError marks a fault produced by an Injector.
	InjectedError = resilience.InjectedError
	// RetryPolicy shapes Retry: attempts, capped exponential backoff,
	// deterministic jitter.
	RetryPolicy = resilience.RetryPolicy
	// SubmitOptions carries per-run policy (deadline, checkpoint name —
	// resolved inside the registry's CheckpointDir) into
	// ServeRegistry.SubmitWith.
	SubmitOptions = serve.SubmitOptions
)

var (
	// GuardPanics runs fn, converting a panic into a *PanicError.
	GuardPanics = resilience.Guard
	// IsPanic extracts the *PanicError from an error chain.
	IsPanic = resilience.IsPanic
	// Retry runs fn under a RetryPolicy until success, a Permanent error,
	// context cancellation, or exhaustion.
	Retry = resilience.Retry
	// PermanentError marks an error as non-retryable for Retry.
	PermanentError = resilience.Permanent
	// IsInjectedFault reports whether an error came from an Injector.
	IsInjectedFault = resilience.IsInjected
	// ParseInjector parses a fault-injection spec such as
	// "seed=7,core.trial=error:@10,serve.job=panic:0.05" (empty: nil).
	ParseInjector = resilience.Parse
	// InjectorFromEnv parses $CHOP_FAULT_INJECT.
	InjectorFromEnv = resilience.FromEnv
	// SaveCheckpoint / LoadCheckpoint read and write versioned, atomically
	// replaced JSON checkpoint files.
	SaveCheckpoint = resilience.SaveCheckpoint
	LoadCheckpoint = resilience.LoadCheckpoint
)

// ErrJobTimeout is the failure cause of a served run that exhausted its
// wall-clock deadline.
var ErrJobTimeout = serve.ErrJobTimeout

// Advisor types (package advisor).
type (
	// AdvisorSession is an interactive partitioning session.
	AdvisorSession = advisor.Session
)

var (
	// NewAdvisor starts an interactive session.
	NewAdvisor = advisor.New
	// Improve hill-climbs over operation migrations.
	Improve = advisor.Improve
	// CompileHLS compiles the textual behavioral language (with loop
	// unrolling) to a data-flow graph.
	CompileHLS = hlspec.Compile
	// DCT8 is an 8-point DCT butterfly benchmark.
	DCT8 = dfg.DCT8
	// MatMul is an n x n matrix-vector multiply benchmark.
	MatMul = dfg.MatMul
)
